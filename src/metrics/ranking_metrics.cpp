#include "metrics/ranking_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace pathrank::metrics {

double MeanAbsoluteError(std::span<const double> predicted,
                         std::span<const double> truth) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  double sum = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    sum += std::abs(predicted[i] - truth[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

double MeanAbsoluteRelativeError(std::span<const double> predicted,
                                 std::span<const double> truth) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  double err = 0.0;
  double denom = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    err += std::abs(predicted[i] - truth[i]);
    denom += std::abs(truth[i]);
  }
  return denom > 0.0 ? err / denom : 0.0;
}

double KendallTau(std::span<const double> a, std::span<const double> b) {
  PR_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  // O(n^2) tau-b; candidate sets are small (k <= ~20) so this is exact and
  // fast enough everywhere it is used.
  long long concordant = 0;
  long long discordant = 0;
  long long ties_a = 0;
  long long ties_b = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        // tied in both: contributes to neither
      } else if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0.0) == (db > 0.0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = concordant + discordant;
  const double denom = std::sqrt((n0 + ties_a) * (n0 + ties_b));
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) /
         denom;
}

std::vector<double> FractionalRanks(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return values[i] < values[j]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average the 1-based ranks i+1 .. j+1 across the tie group.
    const double avg = 0.5 * static_cast<double>(i + 1 + j + 1);
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = avg;
    i = j + 1;
  }
  return ranks;
}

double SpearmanRho(std::span<const double> a, std::span<const double> b) {
  PR_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  const auto ra = FractionalRanks(a);
  const auto rb = FractionalRanks(b);
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += ra[i];
    mean_b += rb[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean_a;
    const double db = rb[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double TopOneAccuracy(std::span<const double> predicted,
                      std::span<const double> truth) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  const size_t arg_pred = static_cast<size_t>(
      std::max_element(predicted.begin(), predicted.end()) -
      predicted.begin());
  const double best_truth = *std::max_element(truth.begin(), truth.end());
  return truth[arg_pred] == best_truth ? 1.0 : 0.0;
}

double Ndcg(std::span<const double> predicted,
            std::span<const double> truth) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  const size_t n = predicted.size();
  std::vector<size_t> by_pred(n);
  std::iota(by_pred.begin(), by_pred.end(), size_t{0});
  std::sort(by_pred.begin(), by_pred.end(),
            [&](size_t i, size_t j) { return predicted[i] > predicted[j]; });
  std::vector<double> sorted_truth(truth.begin(), truth.end());
  std::sort(sorted_truth.begin(), sorted_truth.end(), std::greater<>());
  double dcg = 0.0;
  double idcg = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double discount = 1.0 / std::log2(static_cast<double>(i) + 2.0);
    dcg += truth[by_pred[i]] * discount;
    idcg += sorted_truth[i] * discount;
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

void MetricAccumulator::AddQuery(std::span<const double> predicted,
                                 std::span<const double> truth) {
  PR_CHECK(predicted.size() == truth.size() && !predicted.empty());
  for (size_t i = 0; i < predicted.size(); ++i) {
    abs_err_sum_ += std::abs(predicted[i] - truth[i]);
    abs_truth_sum_ += std::abs(truth[i]);
  }
  num_points_ += predicted.size();
  tau_sum_ += KendallTau(predicted, truth);
  rho_sum_ += SpearmanRho(predicted, truth);
  top1_sum_ += TopOneAccuracy(predicted, truth);
  ndcg_sum_ += Ndcg(predicted, truth);
  ++num_queries_;
}

double MetricAccumulator::mae() const {
  return num_points_ > 0 ? abs_err_sum_ / static_cast<double>(num_points_)
                         : 0.0;
}

double MetricAccumulator::mare() const {
  return abs_truth_sum_ > 0.0 ? abs_err_sum_ / abs_truth_sum_ : 0.0;
}

double MetricAccumulator::mean_kendall_tau() const {
  return num_queries_ > 0 ? tau_sum_ / static_cast<double>(num_queries_)
                          : 0.0;
}

double MetricAccumulator::mean_spearman_rho() const {
  return num_queries_ > 0 ? rho_sum_ / static_cast<double>(num_queries_)
                          : 0.0;
}

double MetricAccumulator::mean_top1() const {
  return num_queries_ > 0 ? top1_sum_ / static_cast<double>(num_queries_)
                          : 0.0;
}

double MetricAccumulator::mean_ndcg() const {
  return num_queries_ > 0 ? ndcg_sum_ / static_cast<double>(num_queries_)
                          : 0.0;
}

}  // namespace pathrank::metrics
