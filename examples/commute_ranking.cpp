// Commute-ranking scenario: the routing-service use case that motivates
// the paper. A navigation provider wants to suggest routes that local
// drivers would actually take, not merely the shortest.
//
// We train PathRank on one group of drivers, then for held-out commutes we
// compare three route suggestions against the driver's actual path:
//   * shortest path (classic routing),
//   * fastest path (classic routing),
//   * PathRank's top-ranked candidate.
// The printed score is the weighted Jaccard similarity to the path the
// driver really took — higher is better.
#include <cstdio>

#include "pathrank.h"
#include "routing/cost_model.h"
#include "routing/path_similarity.h"

int main() {
  using namespace pathrank;

  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 20;
  net_cfg.cols = 20;
  net_cfg.seed = 11;
  const auto network = graph::BuildSyntheticNetwork(net_cfg);

  traj::TrajectoryGeneratorConfig traj_cfg;
  traj_cfg.num_drivers = 25;
  traj_cfg.num_trips = 260;
  traj_cfg.min_trip_distance_m = 3000.0;
  traj_cfg.max_path_vertices = 50;
  traj_cfg.seed = 12;
  const auto trips = traj::TrajectoryGenerator(network, traj_cfg).Generate();

  data::CandidateGenConfig gen_cfg;
  gen_cfg.strategy = data::CandidateStrategy::kDiversifiedTopK;
  gen_cfg.k = 8;
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen_cfg);
  Rng rng(13);
  const auto split = data::SplitDataset(dataset, 0.75, 0.1, rng);

  embedding::Node2VecConfig n2v;
  n2v.skipgram.dims = 48;
  n2v.seed = 14;
  const auto table = embedding::TrainNode2Vec(network, n2v);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 48;
  model_cfg.hidden_size = 64;
  model_cfg.finetune_embedding = true;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  model.InitializeEmbedding(table);
  core::TrainerConfig train_cfg;
  train_cfg.epochs = 12;
  train_cfg.learning_rate = 3e-3;
  core::TrainPathRank(model, split.train, split.validation, train_cfg);

  // Deployment surface: immutable snapshot + thread-safe engine.
  const serving::ServingEngine engine(network,
                                      serving::ModelSnapshot::Capture(model));
  routing::Dijkstra dijkstra(network);
  const auto length_cost = routing::EdgeCostFn::Length(network);
  const auto time_cost = routing::EdgeCostFn::TravelTime(network);

  std::printf(
      "similarity of suggested route to the driver's actual path\n"
      "(weighted Jaccard; higher = closer to real driver behaviour)\n\n");
  std::printf("%-10s %10s %10s %10s\n", "commute", "shortest", "fastest",
              "PathRank");
  std::printf("%s\n", std::string(44, '-').c_str());

  double sum_short = 0.0;
  double sum_fast = 0.0;
  double sum_rank = 0.0;
  int count = 0;
  const size_t num_queries = std::min<size_t>(12, split.test.queries.size());
  for (size_t i = 0; i < num_queries; ++i) {
    const auto& q = split.test.queries[i];
    const auto shortest =
        dijkstra.ShortestPath(q.source, q.destination, length_cost);
    const auto fastest =
        dijkstra.ShortestPath(q.source, q.destination, time_cost);
    const auto ranked = engine.Rank(q.source, q.destination, gen_cfg);
    if (!shortest.has_value() || !fastest.has_value() || ranked.empty()) {
      continue;
    }
    const double sim_short =
        routing::WeightedJaccard(network, shortest->edges, q.truth.edges);
    const double sim_fast =
        routing::WeightedJaccard(network, fastest->edges, q.truth.edges);
    const double sim_rank = routing::WeightedJaccard(
        network, ranked.front().path.edges, q.truth.edges);
    std::printf("#%-9d %10.3f %10.3f %10.3f\n", static_cast<int>(i),
                sim_short, sim_fast, sim_rank);
    sum_short += sim_short;
    sum_fast += sim_fast;
    sum_rank += sim_rank;
    ++count;
  }
  std::printf("%s\n", std::string(44, '-').c_str());
  std::printf("%-10s %10.3f %10.3f %10.3f\n", "mean", sum_short / count,
              sum_fast / count, sum_rank / count);
  std::printf(
      "\nPathRank's top suggestion should match real driver behaviour at\n"
      "least as well as the classic shortest/fastest suggestions.\n");
  return 0;
}
