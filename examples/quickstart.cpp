// Quickstart: the full PathRank pipeline end-to-end on a small synthetic
// network, then rank candidate paths for one query.
//
//   build/examples/quickstart
//
// Steps: (1) synthesise a road network, (2) simulate driver trajectories,
// (3) generate labelled training candidates (D-TkDI), (4) train node2vec
// vertex embeddings, (5) train PathRank (PR-A2), (6) evaluate on held-out
// trajectories, (7) deploy: snapshot the trained weights into a
// thread-safe ServingEngine and rank candidates for a fresh query.
#include <cstdio>

#include "pathrank.h"

int main() {
  using namespace pathrank;

  // 1. Road network (stand-in for North Jutland).
  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 16;
  net_cfg.cols = 16;
  net_cfg.seed = 1;
  const auto network = graph::BuildSyntheticNetwork(net_cfg);
  std::printf("[1/7] network: %s\n", network.Summary().c_str());

  // 2. Simulated driver trajectories (the training signal).
  traj::TrajectoryGeneratorConfig traj_cfg;
  traj_cfg.num_drivers = 15;
  traj_cfg.num_trips = 150;
  traj_cfg.min_trip_distance_m = 2500.0;
  traj_cfg.max_path_vertices = 45;
  traj_cfg.seed = 2;
  const auto trips = traj::TrajectoryGenerator(network, traj_cfg).Generate();
  std::printf("[2/7] simulated %zu trips from %d drivers\n", trips.size(),
              traj_cfg.num_drivers);

  // 3. Candidate generation with ground-truth labels.
  data::CandidateGenConfig gen_cfg;
  gen_cfg.strategy = data::CandidateStrategy::kDiversifiedTopK;
  gen_cfg.k = 6;
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen_cfg);
  std::printf("[3/7] dataset: %s\n",
              data::StatsToString(data::ComputeStats(dataset)).c_str());

  Rng rng(3);
  const auto split = data::SplitDataset(dataset, 0.7, 0.1, rng);

  // 4. Spatial network embedding (node2vec).
  embedding::Node2VecConfig n2v;
  n2v.skipgram.dims = 32;
  n2v.walk.walks_per_vertex = 8;
  n2v.walk.walk_length = 25;
  n2v.seed = 4;
  const auto table = embedding::TrainNode2Vec(network, n2v);
  std::printf("[4/7] node2vec embeddings: %zu x %zu\n", table.rows(),
              table.cols());

  // 5. Train PathRank (PR-A2: embedding fine-tuned).
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 32;
  model_cfg.hidden_size = 48;
  model_cfg.finetune_embedding = true;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  model.InitializeEmbedding(table);
  core::TrainerConfig train_cfg;
  train_cfg.epochs = 15;
  train_cfg.learning_rate = 3e-3;
  const auto history =
      core::TrainPathRank(model, split.train, split.validation, train_cfg);
  std::printf("[5/7] trained %zu epochs (best val MAE %.4f at epoch %d)\n",
              history.epochs.size(), history.best_val_mae,
              history.best_epoch);

  // 6. Evaluate on held-out trajectories.
  const auto result = core::Evaluate(model, split.test);
  std::printf("[6/7] test: %s\n", result.ToString().c_str());

  // 7. Deployment: capture an immutable snapshot of the trained weights
  // and serve it from a replica-pool engine. Any number of threads could
  // now call engine.Rank / RankBatch concurrently on this one engine.
  const auto& query_trip = split.test.queries.front();
  serving::ServingOptions serve_opts;
  serve_opts.candidates = gen_cfg;
  const serving::ServingEngine engine(
      network, serving::ModelSnapshot::Capture(model), serve_opts);
  const auto ranked =
      engine.Rank(query_trip.source, query_trip.destination);
  std::printf("[7/7] query %u -> %u, %zu candidates:\n", query_trip.source,
              query_trip.destination, ranked.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("   #%zu score=%.3f length=%.0fm time=%.0fs vertices=%zu\n",
                i + 1, ranked[i].score, ranked[i].path.length_m,
                ranked[i].path.time_s, ranked[i].path.num_vertices());
  }
  return 0;
}
