// Routing-substrate explorer: compares the point-to-point engines on the
// same queries (cost equality, vertices settled) and shows what the
// candidate generators produce — the "advanced routing" component of the
// paper's solution overview.
#include <cstdio>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "graph/network_builder.h"
#include "routing/astar.h"
#include "routing/bidirectional_dijkstra.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/diversified.h"
#include "routing/path_similarity.h"
#include "routing/yen.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::routing;

  graph::SyntheticNetworkConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.seed = 21;
  const auto network = graph::BuildSyntheticNetwork(cfg);
  std::printf("network: %s\n\n", network.Summary().c_str());

  const auto cost = EdgeCostFn::Length(network);
  Dijkstra dijkstra(network);
  BidirectionalDijkstra bidi(network);
  AStar astar(network);

  std::printf("point-to-point engines (5 random far queries):\n");
  std::printf("%-8s %12s %12s %12s\n", "query", "dijkstra", "bidirectional",
              "astar");
  Rng rng(22);
  for (int i = 0; i < 5; ++i) {
    const auto s =
        static_cast<VertexId>(rng.NextBounded(network.num_vertices()));
    const auto t =
        static_cast<VertexId>(rng.NextBounded(network.num_vertices()));
    if (s == t) continue;
    const auto pd = dijkstra.ShortestPath(s, t, cost);
    const size_t settled_d = dijkstra.last_settled_count();
    const auto pb = bidi.ShortestPath(s, t, cost);
    const size_t settled_b = bidi.last_settled_count();
    const auto pa = astar.ShortestPath(s, t, cost);
    const size_t settled_a = astar.last_settled_count();
    if (!pd.has_value()) continue;
    std::printf("#%-7d %7.0fm/%4zu %7.0fm/%4zu %7.0fm/%4zu  (settled)\n", i,
                pd->cost, settled_d, pb->cost, settled_b, pa->cost,
                settled_a);
  }

  const VertexId s = 40;
  const VertexId t = static_cast<VertexId>(network.num_vertices() - 40);
  std::printf("\ntop-5 shortest paths %u -> %u (Yen):\n", s, t);
  const auto topk = TopKShortestPaths(network, s, t, cost, 5);
  for (size_t i = 0; i < topk.size(); ++i) {
    std::printf("  #%zu cost=%.0fm vertices=%zu sim_to_best=%.3f\n", i + 1,
                topk[i].cost, topk[i].num_vertices(),
                WeightedJaccard(network, topk[i].edges, topk[0].edges));
  }

  std::printf("\ndiversified top-5 (threshold 0.6):\n");
  DiversifiedOptions opt;
  opt.k = 5;
  opt.similarity_threshold = 0.6;
  const auto div = DiversifiedTopK(network, s, t, cost, opt);
  for (size_t i = 0; i < div.size(); ++i) {
    std::printf("  #%zu cost=%.0fm vertices=%zu sim_to_best=%.3f\n", i + 1,
                div[i].cost, div[i].num_vertices(),
                WeightedJaccard(network, div[i].edges, div[0].edges));
  }
  std::printf(
      "\nNote how the diversified set trades a little extra length for\n"
      "substantially different routes - the paper's training candidates.\n");
  return 0;
}
