// Raw-GPS pipeline demo: the data-preparation loop the paper's trajectory
// corpus went through. Simulates noisy GPS traces for driver trips, map
// matches them back onto the network with the HMM matcher, and reports the
// recovery quality (weighted Jaccard between matched and true paths).
#include <cstdio>

#include "common/rng.h"
#include "graph/grid_index.h"
#include "graph/network_builder.h"
#include "routing/path_similarity.h"
#include "traj/gps_simulator.h"
#include "traj/map_matcher.h"
#include "traj/trajectory_generator.h"

int main() {
  using namespace pathrank;

  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = 16;
  net_cfg.cols = 16;
  net_cfg.seed = 31;
  const auto network = graph::BuildSyntheticNetwork(net_cfg);
  const graph::GridIndex index(network, 300.0);
  std::printf("network: %s\n\n", network.Summary().c_str());

  traj::TrajectoryGeneratorConfig traj_cfg;
  traj_cfg.num_drivers = 6;
  traj_cfg.num_trips = 12;
  traj_cfg.min_trip_distance_m = 2500.0;
  traj_cfg.seed = 32;
  const auto trips = traj::TrajectoryGenerator(network, traj_cfg).Generate();

  traj::GpsSimulatorConfig gps_cfg;
  gps_cfg.sample_interval_s = 5.0;
  gps_cfg.noise_sigma_m = 15.0;
  traj::MapMatcherConfig mm_cfg;
  mm_cfg.emission_sigma_m = 18.0;
  const traj::MapMatcher matcher(network, index, mm_cfg);

  std::printf("%-6s %8s %8s %10s %10s\n", "trip", "fixes", "edges",
              "matched", "wJaccard");
  std::printf("%s\n", std::string(48, '-').c_str());

  Rng rng(33);
  double total_similarity = 0.0;
  int matched_count = 0;
  for (size_t i = 0; i < trips.size(); ++i) {
    const auto gps = traj::SimulateGps(network, trips[i], gps_cfg, rng);
    const auto matched = matcher.Match(gps);
    if (!matched.has_value()) {
      std::printf("#%-5zu %8zu %8zu %10s %10s\n", i, gps.points.size(),
                  trips[i].path.edges.size(), "no", "-");
      continue;
    }
    const double sim = routing::WeightedJaccard(network, matched->edges,
                                                trips[i].path.edges);
    std::printf("#%-5zu %8zu %8zu %10zu %10.3f\n", i, gps.points.size(),
                trips[i].path.edges.size(), matched->edges.size(), sim);
    total_similarity += sim;
    ++matched_count;
  }
  std::printf("%s\n", std::string(48, '-').c_str());
  std::printf("matched %d/%zu trips, mean recovery quality %.3f\n",
              matched_count, trips.size(),
              matched_count > 0 ? total_similarity / matched_count : 0.0);
  return 0;
}
