#!/usr/bin/env bash
# Builds Release, runs bench_throughput and checks every metric against the
# committed baseline (BENCH_throughput.json) with a relative tolerance.
# This gates GEMM GFLOP/s, walk/candidate throughput, training epoch time
# AND the serving section (p50/p99 rank latency + QPS at 1..N threads) —
# a serving regression fails the check like any other metric.
#
#   tools/run_bench.sh                 check against the committed baseline
#   tools/run_bench.sh --update        overwrite the committed baseline
#
# PATHRANK_BENCH_TOLERANCE (default 0.30) sets the allowed relative
# regression; PATHRANK_BENCH_SCALE (tiny|small|paper) sizes the workload.
# Baselines are machine-specific: regenerate with --update when benching
# on new hardware before trusting the check.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-bench"
BASELINE="$ROOT/BENCH_throughput.json"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target bench_throughput >/dev/null

if [[ "${1:-}" == "--update" ]]; then
  PATHRANK_BENCH_OUT="$BASELINE" "$BUILD/bench_throughput"
  echo "baseline updated: $BASELINE"
elif [[ -f "$BASELINE" ]]; then
  PATHRANK_BENCH_OUT="$BUILD/BENCH_throughput.json" \
    "$BUILD/bench_throughput" --check "$BASELINE"
else
  echo "no baseline at $BASELINE; writing one" >&2
  PATHRANK_BENCH_OUT="$BASELINE" "$BUILD/bench_throughput"
fi
