#!/usr/bin/env bash
# Builds Release, runs bench_throughput and checks every metric against the
# committed baseline (BENCH_throughput.json) with a relative tolerance.
# This gates GEMM GFLOP/s, walk/candidate throughput, training epoch time
# AND the serving sections — per-request rank latency/QPS, the coalesced
# serve_batched_* latency/QPS, the end-to-end serve_http_* loopback
# latency/QPS/shed-rate, the serve_route_* online-routing pipeline (cold
# vs candidate-cached latency + routes/s), and snapshot capture/hot-swap
# latency at 1..N threads — a serving regression fails the check like any
# other metric.
# The required-family check below additionally fails the run if a bench
# edit silently drops one of those metric families, and the doc link
# checker keeps README/docs references resolvable.
#
#   tools/run_bench.sh                 check against the committed baseline
#   tools/run_bench.sh --update        overwrite the committed baseline
#   tools/run_bench.sh --smoke         metric-family gate only: run the
#                                      bench, verify every family is
#                                      emitted, skip the perf thresholds
#                                      (for CI on shared runners, where
#                                      absolute numbers are noise)
#
# PATHRANK_BENCH_TOLERANCE (default 0.30) sets the allowed relative
# regression; PATHRANK_BENCH_SCALE (tiny|small|paper) sizes the workload.
# Baselines are machine-specific: regenerate with --update when benching
# on new hardware before trusting the check.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-bench"
BASELINE="$ROOT/BENCH_throughput.json"

# Metric families every bench run must emit; a fresh JSON missing one
# means the corresponding bench section was lost, which the
# baseline-driven check alone would not notice on --update.
REQUIRED_FAMILIES=(
  gemm256_gflops
  walks_per_s
  candidates_per_s
  serve_rank_per_s
  serve_rank_p50_s
  serve_rank_p99_s
  serve_batched_per_s
  serve_batched_p50_s
  serve_batched_p99_s
  serve_http_per_s
  serve_http_p50_s
  serve_http_p99_s
  serve_http_shed_rate
  serve_route_cold_p50_s
  serve_route_cold_p99_s
  serve_route_cold_small_dijkstra_p50_s
  serve_route_cold_small_dijkstra_p99_s
  serve_route_cold_small_alt_p50_s
  serve_route_cold_small_alt_p99_s
  serve_route_cold_large_dijkstra_p50_s
  serve_route_cold_large_dijkstra_p99_s
  serve_route_cold_large_alt_p50_s
  serve_route_cold_large_alt_p99_s
  serve_route_warm_p50_s
  serve_route_warm_p99_s
  serve_route_per_s
  serve_route_after_swap_p50_s
  serve_route_after_swap_p99_s
  serve_traffic_ingest_p50_s
  serve_traffic_ingest_p99_s
  snapshot_capture_s
  swap_latency_s
  train_epoch_s
)

require_families() {
  local json="$1"
  local missing=0
  for family in "${REQUIRED_FAMILIES[@]}"; do
    if ! grep -q "\"$family" "$json"; then
      echo "MISSING FAMILY  $family (not in $json)" >&2
      missing=1
    fi
  done
  if [[ "$missing" != 0 ]]; then
    echo "bench output lost a required metric family" >&2
    exit 1
  fi
}

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" -j --target bench_throughput >/dev/null

if [[ "${1:-}" == "--update" ]]; then
  PATHRANK_BENCH_OUT="$BASELINE" "$BUILD/bench_throughput"
  require_families "$BASELINE"
  echo "baseline updated: $BASELINE"
elif [[ "${1:-}" == "--smoke" ]]; then
  PATHRANK_BENCH_OUT="$BUILD/BENCH_throughput.json" "$BUILD/bench_throughput"
  require_families "$BUILD/BENCH_throughput.json"
  echo "bench smoke: all required metric families emitted"
elif [[ -f "$BASELINE" ]]; then
  PATHRANK_BENCH_OUT="$BUILD/BENCH_throughput.json" \
    "$BUILD/bench_throughput" --check "$BASELINE"
  require_families "$BUILD/BENCH_throughput.json"
else
  echo "no baseline at $BASELINE; writing one" >&2
  PATHRANK_BENCH_OUT="$BASELINE" "$BUILD/bench_throughput"
  require_families "$BASELINE"
fi

# Docs gate alongside perf: broken README/docs links fail the run too.
bash "$ROOT/tools/check_doc_links.sh"
