#!/usr/bin/env bash
# Architecture-layering gate: derives the module dependency graph of src/
# from its `#include "module/..."` lines and fails (non-zero exit, one
# line per offender) when an include points UP the layer order or when
# the module graph has a cycle. The layering is the one docs/
# architecture.md draws:
#
#   band 0  common                     (no dependencies)
#   band 1  graph
#   band 2  routing, nn
#   band 3  data, embedding, traj
#   band 4  core, metrics
#   band 5  serving
#   band 6  <src root>                 (the pathrank.h umbrella only)
#
# A module may include same-band or lower-band modules only; same-band
# edges (core -> metrics, data -> traj) are legal as long as the module
# graph stays acyclic — the explicit cycle check below catches a future
# A <-> B pair inside one band, which per-edge band comparison cannot.
#
# Like check_banned_patterns.sh this is machine-checked architecture:
# the DAG in the docs is enforced, not tribal knowledge. Registered as
# the `layering_check` ctest and run by the CI hygiene job. There is
# deliberately NO allowlist: an upward include is never justified —
# split the header or move the code down instead.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

failures=0

# Module -> band. The src root ("") is the umbrella header's home and
# sits above everything. A NEW top-level directory under src/ must be
# added here (and to docs/architecture.md) or the gate fails — placing a
# module in the layer order is part of creating it.
band_of() {
  case "$1" in
    common) echo 0 ;;
    graph) echo 1 ;;
    routing | nn) echo 2 ;;
    data | embedding | traj) echo 3 ;;
    core | metrics) echo 4 ;;
    serving) echo 5 ;;
    "") echo 6 ;;
    *) echo "" ;;
  esac
}

mapfile -t SRC_FILES < <(cd "$ROOT" && find src -name '*.cpp' -o -name '*.h' | sort)

# Module-level edge set "from to" (deduplicated, self-edges dropped),
# built alongside the per-include band check so one pass serves both.
edges=""

for file in "${SRC_FILES[@]}"; do
  rel="${file#src/}"
  from_module="$(dirname "$rel")"
  [ "$from_module" = "." ] && from_module=""
  from_band="$(band_of "$from_module")"
  if [ -z "$from_band" ]; then
    echo "LAYERING $file: module 'src/$from_module' has no band — add it to tools/check_layering.sh and docs/architecture.md"
    failures=$((failures + 1))
    continue
  fi
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    line="${hit%%:*}"
    include="$(echo "${hit#*:}" | sed -E 's|^#include "([^"]+)".*|\1|')"
    case "$include" in
      */*) to_module="${include%%/*}" ;;
      *) to_module="" ;;  # src-root include (the umbrella header)
    esac
    [ "$to_module" = "$from_module" ] && continue
    to_band="$(band_of "$to_module")"
    if [ -z "$to_band" ]; then
      echo "LAYERING $file:$line: include of unknown module '$to_module' ($include)"
      failures=$((failures + 1))
      continue
    fi
    if [ "$to_band" -gt "$from_band" ]; then
      echo "LAYERING $file:$line: '$from_module' (band $from_band) includes upward into '$to_module' (band $to_band): $include"
      failures=$((failures + 1))
    fi
    edges="$edges$from_module>$to_module"$'\n'
  done < <(grep -En '^#include "[a-zA-Z0-9_]+(/[a-zA-Z0-9_./]+)?\.h"' "$ROOT/$file" || true)
done

# Cycle check over the module graph (Kahn's algorithm: repeatedly retire
# in-degree-zero modules; whatever survives sits on a cycle). Catches
# mutual includes WITHIN a band, which the per-edge check above allows.
cycle_modules="$(printf '%s' "$edges" | sort -u | awk -F'>' '
  NF == 2 {
    if (!($1 in seen)) { seen[$1] = 1; nodes[++n] = $1 }
    if (!($2 in seen)) { seen[$2] = 1; nodes[++n] = $2 }
    edge_from[++m] = $1
    edge_to[m] = $2
  }
  END {
    removed = 1
    while (removed) {
      removed = 0
      # In-degree over edges whose source is still live.
      for (i = 1; i <= n; i++) indeg[nodes[i]] = 0
      for (j = 1; j <= m; j++) {
        if (!done[edge_from[j]]) indeg[edge_to[j]]++
      }
      for (i = 1; i <= n; i++) {
        node = nodes[i]
        if (done[node] || indeg[node] > 0) continue
        done[node] = 1
        removed = 1
      }
    }
    for (i = 1; i <= n; i++) {
      if (!done[nodes[i]]) printf "%s ", nodes[i]
    }
  }')"

# Survivors are the cycle's members plus everything they include
# (in-degree never drains below a cycle) — the cycle is in this set.
if [ -n "${cycle_modules// /}" ]; then
  echo "LAYERING cycle: module include graph has a cycle within: $cycle_modules"
  failures=$((failures + 1))
fi

if [ "$failures" -gt 0 ]; then
  echo "check_layering: $failures finding(s)"
  exit 1
fi
echo "check_layering: clean"
