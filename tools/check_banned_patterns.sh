#!/usr/bin/env bash
# Banned-pattern linter: greps the C++ tree for constructs this codebase
# has decided are always bugs-in-waiting and fails (non-zero exit, one
# line per offender) when any appears outside the allowlist. Registered
# as the `banned_pattern_check` ctest and run by the CI static-analysis
# job; docs/static_analysis.md has the rationale per rule.
#
# Rules:
#   numeric-parse   raw std::stoi/atoi/strtol/strtod & family anywhere
#                   but src/common/parse.* (their home). They half-parse
#                   ("12abc" -> 12), wrap or saturate on overflow, and
#                   the sto* family throws bare exceptions; common/parse
#                   is the whole-token, overflow-checked replacement.
#   raw-random      rand()/srand() or std::random_device in library code
#                   (src/). Every draw in this repo must be seeded and
#                   reproducible (common/rng, splitmix64 counters) —
#                   nondeterminism breaks the bitwise-equality tests.
#   naked-new       `new` / `delete` expressions in src/serving. The
#                   serving layer is exception-heavy (deadlines, faults,
#                   shed paths); ownership goes through smart pointers
#                   and containers only.
#   locked-sleep    std::this_thread::sleep_for while a lock guard is in
#                   scope. Sleeping under a mutex turns a pause into a
#                   pile-up; injected fault delays must run unlocked.
#   raw-sync        std::mutex / lock_guard / unique_lock / scoped_lock /
#                   shared_lock / condition_variable in src/ outside
#                   common/thread_annotations.h (their one home). Locking
#                   must go through the annotated wrappers (common::Mutex
#                   & friends) or it is invisible to BOTH deadlock-freedom
#                   proofs: clang's thread-safety analysis and the
#                   PATHRANK_DEBUG_LOCK_RANK runtime checker
#                   (common/lock_rank.h). std::once_flag/call_once stay
#                   legal — they hold no user-visible lock.
#
# Allowlist: tools/banned_patterns_allowlist.txt, lines of
# "<rule>:<repo-relative-path>  # reason". An entry suppresses that rule
# for that file; stale entries (file gone) fail the run so the list
# cannot rot.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ALLOWLIST="$ROOT/tools/banned_patterns_allowlist.txt"

failures=0

# Comment- and string-stripped view of a source file, line numbers
# preserved: `// ...` tails, /* ... */ bodies (multi-line kept as blank
# lines) and string-literal contents are blanked so a banned name in a
# diagnostic message or a comment does not count.
stripped() {
  awk '
    {
      line = $0
      out = ""
      i = 1
      n = length(line)
      while (i <= n) {
        c = substr(line, i, 1)
        nxt = (i < n) ? substr(line, i + 1, 1) : ""
        if (in_block) {
          if (c == "*" && nxt == "/") { in_block = 0; i += 2; continue }
          i++; continue
        }
        if (in_str) {
          if (c == "\\") { i += 2; continue }
          if (c == "\"") { in_str = 0; out = out "\"" }
          i++; continue
        }
        if (in_chr) {
          if (c == "\\") { i += 2; continue }
          if (c == "\x27") { in_chr = 0; out = out "\x27" }
          i++; continue
        }
        if (c == "/" && nxt == "/") break
        if (c == "/" && nxt == "*") { in_block = 1; i += 2; continue }
        if (c == "\"") { in_str = 1; out = out c; i++; continue }
        if (c == "\x27") { in_chr = 1; out = out c; i++; continue }
        out = out c
        i++
      }
      print out
      in_str = 0; in_chr = 0   # string/char literals do not span lines
    }
  ' "$1"
}

allowlisted() {
  local rule="$1" file="$2"
  [ -f "$ALLOWLIST" ] || return 1
  grep -Eq "^${rule}:${file}([[:space:]]|$)" "$ALLOWLIST"
}

report() {
  local rule="$1" file="$2" line="$3" text="$4"
  echo "BANNED[$rule] $file:$line: $text"
  failures=$((failures + 1))
}

# Rule scopes. Library + drivers for the parse/random rules; the
# serving layer only for naked-new; everything for locked-sleep.
mapfile -t ALL_FILES < <(cd "$ROOT" && find src tests tools bench examples \
  -name '*.cpp' -o -name '*.h' | sort)
mapfile -t SRC_FILES < <(cd "$ROOT" && find src -name '*.cpp' -o -name '*.h' | sort)
mapfile -t SERVING_FILES < <(cd "$ROOT" && find src/serving \
  -name '*.cpp' -o -name '*.h' | sort)

# ---- numeric-parse -----------------------------------------------------
NUMERIC_RE='std::(sto(i|l|ul|ll|ull|f|d|ld))[[:space:]]*\(|[^[:alnum:]_](ato(i|l|ll|f)|strto(l|ll|ul|ull|f|d|ld|imax|umax))[[:space:]]*\('
for file in "${ALL_FILES[@]}"; do
  case "$file" in
    src/common/parse.cpp|src/common/parse.h) continue ;;
  esac
  allowlisted numeric-parse "$file" && continue
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    report numeric-parse "$file" "${hit%%:*}" "${hit#*:}"
  done < <(stripped "$ROOT/$file" | grep -En "$NUMERIC_RE" || true)
done

# ---- raw-random --------------------------------------------------------
RANDOM_RE='[^[:alnum:]_](rand|srand)[[:space:]]*\(|std::random_device'
for file in "${SRC_FILES[@]}"; do
  allowlisted raw-random "$file" && continue
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    report raw-random "$file" "${hit%%:*}" "${hit#*:}"
  done < <(stripped "$ROOT/$file" | grep -En "$RANDOM_RE" || true)
done

# ---- naked-new ---------------------------------------------------------
# `= delete` (deleted members) and placement-new do not occur in
# src/serving; the regex targets allocation expressions.
NEW_RE='[^[:alnum:]_.]new[[:space:]]+[[:alnum:]_:]|[^[:alnum:]_=]delete[[:space:]]+[[:alnum:]_*]|delete\[\]'
for file in "${SERVING_FILES[@]}"; do
  allowlisted naked-new "$file" && continue
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    case "${hit#*:}" in
      *"= delete"*) continue ;;
    esac
    report naked-new "$file" "${hit%%:*}" "${hit#*:}"
  done < <(stripped "$ROOT/$file" | grep -En "$NEW_RE" || true)
done

# ---- locked-sleep ------------------------------------------------------
# Brace-depth heuristic: a lock guard declaration records its depth; a
# sleep_for while any recorded guard is still in scope is flagged. Scope
# exit is detected by net brace count per line (good enough for this
# tree's one-brace-per-line style; guards never outlive a function).
for file in "${ALL_FILES[@]}"; do
  allowlisted locked-sleep "$file" && continue
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    report locked-sleep "$file" "${hit%%:*}" "${hit#*:}"
  done < <(stripped "$ROOT/$file" | awk '
    /(MutexLock|lock_guard|unique_lock|scoped_lock|shared_lock)[[:space:]]*[<(]?[^;]*\(/ {
      if ($0 !~ /\/\//) { locks[++n_locks] = depth }
    }
    /sleep_for/ {
      if (n_locks > 0) printf "%d:%s\n", NR, $0
    }
    {
      for (i = 1; i <= length($0); i++) {
        c = substr($0, i, 1)
        if (c == "{") depth++
        if (c == "}") {
          depth--
          while (n_locks > 0 && locks[n_locks] > depth) n_locks--
        }
      }
    }
  ' || true)
done

# ---- raw-sync ----------------------------------------------------------
# The negative lookahead bash can't do is handled by matching the type
# names exactly: a trailing [^a-zA-Z_] keeps std::mutex from matching
# inside longer identifiers while still catching "std::mutex mu;",
# "std::mutex>", "std::mutex&" and friends.
SYNC_RE='std::(recursive_|timed_|recursive_timed_|shared_)?mutex[^a-zA-Z_]|std::(lock_guard|unique_lock|scoped_lock|shared_lock)[^a-zA-Z_]|std::condition_variable(_any)?[^a-zA-Z_]'
for file in "${SRC_FILES[@]}"; do
  case "$file" in
    src/common/thread_annotations.h) continue ;;
  esac
  allowlisted raw-sync "$file" && continue
  while IFS= read -r hit; do
    [ -n "$hit" ] || continue
    report raw-sync "$file" "${hit%%:*}" "${hit#*:}"
  done < <(stripped "$ROOT/$file" | grep -En "$SYNC_RE" || true)
done

# ---- allowlist hygiene -------------------------------------------------
if [ -f "$ALLOWLIST" ]; then
  while IFS= read -r entry; do
    case "$entry" in ''|'#'*) continue ;; esac
    path="${entry#*:}"
    path="${path%%[[:space:]]*}"
    if [ ! -f "$ROOT/$path" ]; then
      echo "STALE allowlist entry (no such file): $entry"
      failures=$((failures + 1))
    fi
  done < "$ALLOWLIST"
fi

if [ "$failures" -gt 0 ]; then
  echo "check_banned_patterns: $failures finding(s)"
  exit 1
fi
echo "check_banned_patterns: clean"
