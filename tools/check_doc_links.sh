#!/usr/bin/env bash
# Doc link checker: fails (non-zero exit, one line per offender) when a
# relative markdown link in README.md or docs/*.md points at a missing
# file, or when its #anchor does not match any heading of the target file.
# External links (http/https/mailto) are skipped. Registered as the
# `doc_link_check` ctest, so a broken link fails CI like a broken test.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# GitHub-style heading slug: lowercase, strip everything but
# [a-z0-9 _-], spaces to hyphens.
slugify() {
  printf '%s' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# All heading slugs of a markdown file, one per line.
heading_slugs() {
  local file="$1"
  # ATX headings only (the repo's docs use no Setext headings), fenced
  # code blocks excluded so `# comment` lines inside ``` do not count.
  # `#+ ` instead of `#{1,6} `: mawk has no interval expressions.
  awk '
    /^```/ { in_code = !in_code; next }
    !in_code && /^#+ / { sub(/^#+ /, ""); print }
  ' "$file" | while IFS= read -r heading; do
    slugify "$heading"
    echo
  done
}

failures=0

check_file() {
  local file="$1"
  local dir
  dir="$(dirname "$file")"
  # Inline links: every "](target)" occurrence, one per line, with fenced
  # code blocks dropped first (same fence rule as heading_slugs — a
  # markdown example inside ``` is not a real link). `|| true`: a file
  # with zero links is fine, but grep's no-match exit 1 would otherwise
  # kill the subshell under set -e -o pipefail.
  { awk '/^```/ { in_code = !in_code; next } !in_code' "$file" \
      | grep -oE '\]\([^)]+\)' 2>/dev/null || true; } \
      | sed -e 's/^](//' -e 's/)$//' \
      | while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    local path="${target%%#*}"
    local anchor=""
    [[ "$target" == *#* ]] && anchor="${target#*#}"

    local resolved
    if [[ -z "$path" ]]; then
      resolved="$file"  # same-file anchor link
    else
      resolved="$dir/$path"
    fi
    if [[ ! -e "$resolved" ]]; then
      echo "BROKEN  $file -> $target (no such file: $resolved)"
      continue
    fi
    if [[ -n "$anchor" && "$resolved" == *.md ]]; then
      # Capture first: `producer | grep -q` would SIGPIPE the producer on
      # an early match, which pipefail turns into a spurious failure.
      local slugs
      slugs="$(heading_slugs "$resolved")"
      if ! grep -qx "$anchor" <<<"$slugs"; then
        echo "BROKEN  $file -> $target (no heading slug '$anchor' in $resolved)"
      fi
    fi
  done
}

broken="$(
  for file in "$ROOT/README.md" "$ROOT"/docs/*.md; do
    [[ -e "$file" ]] && check_file "$file"
  done
)"

if [[ -n "$broken" ]]; then
  echo "$broken"
  failures="$(printf '%s\n' "$broken" | wc -l)"
  echo "doc link check: $failures broken link(s)" >&2
  exit 1
fi
echo "doc link check: all links in README.md + docs/*.md resolve"
