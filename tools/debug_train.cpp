#include <cstdio>
#include "pathrank.h"
#include "metrics/ranking_metrics.h"
#include "routing/path_similarity.h"
#include "common/env.h"
using namespace pathrank;

int main() {
  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = (int)EnvInt("ROWS", 26); net_cfg.cols = (int)EnvInt("COLS", 28); net_cfg.seed = 42;
  net_cfg.deletion_prob = EnvDouble("DELP", 0.12);
  net_cfg.jitter = EnvDouble("JIT", 0.35);
  net_cfg.arterial_every = (int)EnvInt("ART", 6);
  auto network = graph::BuildSyntheticNetwork(net_cfg);
  traj::TrajectoryGeneratorConfig tc;
  tc.num_drivers = (int)EnvInt("DRIVERS", 40); tc.num_trips = (int)EnvInt("TRIPS", 360); tc.min_trip_distance_m = 2500;
  tc.max_path_vertices = (int)EnvInt("MAXV", 55);
  tc.commute_fraction = EnvDouble("COMMUTE", 0.7);
  tc.od_pairs_per_driver = (int)EnvInt("ODS", 6); tc.seed = 43;
  auto trips = traj::TrajectoryGenerator(network, tc).Generate();
  data::CandidateGenConfig gc;
  const std::string strat = EnvString("STRAT", "topk");
  gc.strategy = strat == "div" ? data::CandidateStrategy::kDiversifiedTopK
               : strat == "pen" ? data::CandidateStrategy::kPenalty
                                : data::CandidateStrategy::kTopK;
  gc.similarity_threshold = EnvDouble("THRESH", 0.8);
  gc.k = (int)EnvInt("K", 10);
  data::RankingDataset ds;
  ds.queries = data::GenerateQueries(network, trips, gc);
  std::printf("stats: %s\n", data::StatsToString(data::ComputeStats(ds)).c_str());
  Rng rng(44);
  auto split = data::SplitDataset(ds, 0.7, 0.1, rng);

  embedding::Node2VecConfig n2v;
  n2v.walk.walk_length = 30; n2v.walk.walks_per_vertex = 10;
  n2v.skipgram.dims = 64; n2v.skipgram.epochs = 3;
  auto B = embedding::TrainNode2Vec(network, n2v);

  core::PathRankConfig mc;
  mc.embedding_dim = 64; mc.hidden_size = (size_t)EnvInt("HIDDEN", 64); mc.finetune_embedding = true;
  core::PathRankModel model(network.num_vertices(), mc);
  model.InitializeEmbedding(B);

  core::TrainerConfig trc;
  trc.epochs = (int)EnvInt("EPOCHS", 30);
  trc.learning_rate = EnvDouble("LR", 3e-3);
  trc.batch_size = (size_t)EnvInt("BS", 32);
  trc.patience = 0; trc.verbose = true;
  SetLogLevel(LogLevel::kInfo);
  auto hist = core::TrainPathRank(model, split.train, split.validation, trc);
  auto r = core::Evaluate(model, split.test);
  std::printf("TEST %s\n", r.ToString().c_str());

  // Oracle baseline: rank candidates by similarity to the population
  // consensus shortest path (knows the simulator's consensus, not the
  // driver). Upper bound on what any path-only model can achieve.
  {
    metrics::MetricAccumulator acc;
    routing::Dijkstra dij(network);
    // consensus costs: population preferences without familiarity noise
    Rng prng(tc.seed);
    auto pop = traj::SamplePopulationPreferences(prng);
    std::vector<double> cw(network.num_edges());
    for (graph::EdgeId e = 0; e < network.num_edges(); ++e) {
      const auto& rec = network.edge(e);
      cw[e] = rec.travel_time_s * pop[(size_t)rec.category];
    }
    auto cost = routing::EdgeCostFn::Custom(network, cw);
    for (const auto& q : split.test.queries) {
      auto consensus = dij.ShortestPath(q.source, q.destination, cost);
      if (!consensus.has_value()) continue;
      std::vector<double> pred, truth;
      for (const auto& c : q.candidates) {
        pred.push_back(routing::WeightedJaccard(network, c.path.edges, consensus->edges));
        truth.push_back(c.label);
      }
      acc.AddQuery(pred, truth);
    }
    std::printf("ORACLE mae=%.4f mare=%.4f tau=%.4f rho=%.4f\n",
                acc.mae(), acc.mare(), acc.mean_kendall_tau(), acc.mean_spearman_rho());
  }
  return 0;

}
// (oracle baseline appended by debug iteration — see git history)
