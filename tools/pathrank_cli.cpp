// pathrank_cli — command-line front end for the full pipeline, with file
// persistence between stages so each step can run as a separate process:
//
//   pathrank_cli network  --rows 20 --cols 20 --seed 1 --out net
//   pathrank_cli simulate --network net --trips 700 --drivers 40 \
//                         --out trips.csv
//   pathrank_cli train    --network net --trips trips.csv --m 64 \
//                         --strategy dtkdi --epochs 20 --out model.bin
//   pathrank_cli evaluate --network net --trips trips.csv --model model.bin
//   pathrank_cli rank     --network net --model model.bin --from 12 --to 245
//
// Networks are stored as the CSV pair written by graph::SaveNetworkCsv,
// trips as traj::SaveTrips CSV, models as core::SaveModel checkpoints.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/model_io.h"
#include "core/pathrank.h"
#include "graph/graph_io.h"
#include "traj/trip_io.h"

namespace {

using namespace pathrank;

/// Minimal --flag value parser; every flag takes exactly one value.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      values_[key.substr(2)] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? std::stoi(it->second) : fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? std::stod(it->second) : fallback;
  }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

data::CandidateStrategy ParseStrategy(const std::string& name) {
  if (name == "tkdi" || name == "topk") return data::CandidateStrategy::kTopK;
  if (name == "dtkdi" || name == "div") {
    return data::CandidateStrategy::kDiversifiedTopK;
  }
  if (name == "penalty") return data::CandidateStrategy::kPenalty;
  std::fprintf(stderr, "unknown strategy: %s (tkdi|dtkdi|penalty)\n",
               name.c_str());
  std::exit(2);
}

int CmdNetwork(const Args& args) {
  graph::SyntheticNetworkConfig cfg;
  cfg.rows = args.GetInt("rows", 20);
  cfg.cols = args.GetInt("cols", 20);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const auto network = graph::BuildSyntheticNetwork(cfg);
  const std::string out = args.Require("out");
  graph::SaveNetworkCsv(network, out);
  std::printf("wrote %s_vertices.csv / %s_edges.csv (%s)\n", out.c_str(),
              out.c_str(), network.Summary().c_str());
  return 0;
}

int CmdSimulate(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  traj::TrajectoryGeneratorConfig cfg;
  cfg.num_trips = args.GetInt("trips", 700);
  cfg.num_drivers = args.GetInt("drivers", 40);
  cfg.min_trip_distance_m = args.GetDouble("min-distance", 2500.0);
  cfg.max_path_vertices = args.GetInt("max-vertices", 60);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const auto trips = traj::TrajectoryGenerator(network, cfg).Generate();
  const std::string out = args.Require("out");
  traj::SaveTrips(trips, out);
  std::printf("wrote %zu trips to %s\n", trips.size(), out.c_str());
  return 0;
}

data::RankingDataset BuildDataset(const graph::RoadNetwork& network,
                                  const std::vector<traj::TripPath>& trips,
                                  const Args& args) {
  data::CandidateGenConfig gen;
  gen.strategy = ParseStrategy(args.Get("strategy", "dtkdi"));
  gen.k = args.GetInt("k", 10);
  gen.similarity_threshold = args.GetDouble("threshold", 0.6);
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen);
  return dataset;
}

int CmdTrain(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  const auto trips = traj::LoadTrips(network, args.Require("trips"));
  auto dataset = BuildDataset(network, trips, args);
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 11)));
  const auto split = data::SplitDataset(dataset, 0.8, 0.1, rng);

  const int m = args.GetInt("m", 64);
  embedding::Node2VecConfig n2v;
  n2v.skipgram.dims = m;
  n2v.seed = static_cast<uint64_t>(args.GetInt("seed", 11)) + 1;
  std::printf("training node2vec (%d dims)...\n", m);
  const auto table = embedding::TrainNode2Vec(network, n2v);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = static_cast<size_t>(m);
  model_cfg.hidden_size = static_cast<size_t>(args.GetInt("hidden", 64));
  model_cfg.finetune_embedding = args.GetInt("finetune", 1) != 0;
  model_cfg.multi_task = args.GetInt("multitask", 0) != 0;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  model.InitializeEmbedding(table);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = args.GetInt("epochs", 20);
  train_cfg.learning_rate = args.GetDouble("lr", 3e-3);
  train_cfg.verbose = true;
  SetLogLevel(LogLevel::kInfo);
  std::printf("training PathRank (%s)...\n",
              model_cfg.VariantName().c_str());
  core::TrainPathRank(model, split.train, split.validation, train_cfg);

  const auto result = core::Evaluate(model, split.test);
  std::printf("held-out test: %s\n", result.ToString().c_str());
  const std::string out = args.Require("out");
  core::SaveModel(model, out);
  std::printf("wrote model checkpoint to %s\n", out.c_str());
  return 0;
}

int CmdEvaluate(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  const auto trips = traj::LoadTrips(network, args.Require("trips"));
  auto dataset = BuildDataset(network, trips, args);
  auto model = core::LoadModel(args.Require("model"));
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  const auto result = core::Evaluate(*model, dataset);
  std::printf("%s\n", result.ToString().c_str());
  return 0;
}

int CmdRank(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  auto model = core::LoadModel(args.Require("model"));
  const auto from = static_cast<graph::VertexId>(args.GetInt("from", 0));
  const auto to = static_cast<graph::VertexId>(
      args.GetInt("to", static_cast<int>(network.num_vertices()) - 1));
  if (from >= network.num_vertices() || to >= network.num_vertices()) {
    std::fprintf(stderr, "vertex id out of range\n");
    return 1;
  }
  core::Ranker ranker(network, *model);
  data::CandidateGenConfig gen;
  gen.strategy = ParseStrategy(args.Get("strategy", "dtkdi"));
  gen.k = args.GetInt("k", 10);
  const auto ranked = ranker.Rank(from, to, gen);
  std::printf("%zu candidates for %u -> %u:\n", ranked.size(), from, to);
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("#%zu score=%.4f length=%.0fm time=%.0fs vertices=%zu\n",
                i + 1, ranked[i].score, ranked[i].path.length_m,
                ranked[i].path.time_s, ranked[i].path.num_vertices());
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: pathrank_cli <command> [--flag value ...]\n"
      "commands:\n"
      "  network   --out PREFIX [--rows N --cols N --seed S]\n"
      "  simulate  --network PREFIX --out TRIPS.csv [--trips N --drivers N]\n"
      "  train     --network PREFIX --trips TRIPS.csv --out MODEL.bin\n"
      "            [--strategy tkdi|dtkdi|penalty --k K --m M --hidden H\n"
      "             --epochs E --lr LR --finetune 0|1 --multitask 0|1]\n"
      "  evaluate  --network PREFIX --trips TRIPS.csv --model MODEL.bin\n"
      "  rank      --network PREFIX --model MODEL.bin --from V --to V\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (command == "network") return CmdNetwork(args);
    if (command == "simulate") return CmdSimulate(args);
    if (command == "train") return CmdTrain(args);
    if (command == "evaluate") return CmdEvaluate(args);
    if (command == "rank") return CmdRank(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  PrintUsage();
  return 2;
}
