// pathrank_cli — command-line front end for the full pipeline, with file
// persistence between stages so each step can run as a separate process:
//
//   pathrank_cli network  --rows 20 --cols 20 --seed 1 --out net
//   pathrank_cli simulate --network net --trips 700 --drivers 40
//                         --out trips.csv
//   pathrank_cli train    --network net --trips trips.csv --m 64
//                         --strategy dtkdi --epochs 20 --out model.bin
//   pathrank_cli evaluate --network net --trips trips.csv --model model.bin
//   pathrank_cli rank     --network net --model model.bin --from 12 --to 245
//   pathrank_cli serve    --network net --model model.bin --num-queries 128
//                         --threads 4 --repeat 3
//                         [--batch 1 --clients 8] [--shards 4]
//                         [--watch-model 1] [--http 8080]
//
// `serve` drives the serving stack with a batch of queries (from --queries
// CSV of "source,destination" lines, or sampled randomly) and reports
// per-query latency percentiles and QPS. `--batch 1` coalesces requests
// through a BatchingQueue (closed-loop `--clients` submitters), `--shards
// N` partitions traffic across N engines (`--shard-policy hash|rr`), and
// `--watch-model 1` polls the model checkpoint and hot-swaps the served
// snapshot whenever the file changes — all three without restarting the
// process.
//
// `serve --http PORT` skips the self-drive and instead exposes the same
// stack over HTTP/1.1 (POST /v1/rank, POST /v1/score, POST /v1/route,
// POST /v1/traffic, GET /healthz, GET /statsz) until SIGINT/SIGTERM,
// with admission control in front of the engine (--max-inflight,
// --max-queue-wait-us; overload answers 429 + Retry-After). It composes
// with --batch (requests coalesce through the BatchingQueue), --shards
// and --watch-model, so hot swap and sharding work over the wire.
// /v1/route is the full online pipeline (candidate enumeration + LRU
// candidate cache + scoring, see serving::RoutePlanner); --route-cache N
// sizes the cache. The route pipeline serves a live graph behind a
// GraphStore: POST /v1/traffic ingests edge cost/closure batches
// (epoch + 1 per batch), and `--watch-graph 1` polls the graph source
// files and hot-swaps a re-exported network the same way --watch-model
// swaps checkpoints. The serving network comes from --network PREFIX
// (the CSV pair) or --graph EDGES.csv (edges-only: vertex set inferred,
// coordinates zeroed — enough for travel-time routing).
//
// Networks are stored as the CSV pair written by graph::SaveNetworkCsv,
// trips as traj::SaveTrips CSV, models as core::SaveModel checkpoints.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "pathrank.h"
#include "graph/graph_io.h"
#include "serving/batching_queue.h"
#include "serving/fault_injector.h"
#include "serving/graph_store.h"
#include "serving/http_server.h"
#include "serving/route_planner.h"
#include "serving/sharded_engine.h"
#include "traj/trip_io.h"

namespace {

using namespace pathrank;

/// Minimal --flag value parser; every flag takes exactly one value.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s expects a value\n", key.c_str());
        std::exit(2);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  /// Errors out (listing the offenders) when a parsed flag is not in the
  /// subcommand's allow-list.
  void RejectUnknown(const std::string& command,
                     const std::set<std::string>& known) const {
    bool any = false;
    for (const auto& [key, value] : values_) {
      if (known.count(key) == 0) {
        std::fprintf(stderr, "unknown flag --%s for command '%s'\n",
                     key.c_str(), command.c_str());
        any = true;
      }
    }
    if (any) std::exit(2);
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  int GetInt(const std::string& key, int fallback) const {
    return GetParsed<int32_t>(key, fallback, "an integer", ParseInt32);
  }

  double GetDouble(const std::string& key, double fallback) const {
    return GetParsed<double>(key, fallback, "a number", ParseDouble);
  }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  /// Shared lookup/parse/diagnostic for the numeric getters, built on the
  /// common/parse whole-token parsers: the entire value must convert
  /// (trailing junk, overflow and non-finite values are all clean usage
  /// errors, exit 2 — never a half-parsed flag).
  template <typename T, typename Parse>
  T GetParsed(const std::string& key, T fallback, const char* expected,
              Parse parse) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    T value{};
    if (!parse(it->second, &value)) {
      std::fprintf(stderr, "flag --%s expects %s, got '%s'\n", key.c_str(),
                   expected, it->second.c_str());
      std::exit(2);
    }
    return value;
  }

  std::map<std::string, std::string> values_;
};

data::CandidateStrategy ParseStrategy(const std::string& name) {
  if (name == "tkdi" || name == "topk") return data::CandidateStrategy::kTopK;
  if (name == "dtkdi" || name == "div") {
    return data::CandidateStrategy::kDiversifiedTopK;
  }
  if (name == "penalty") return data::CandidateStrategy::kPenalty;
  std::fprintf(stderr, "unknown strategy: %s (tkdi|dtkdi|penalty)\n",
               name.c_str());
  std::exit(2);
}

int CmdNetwork(const Args& args) {
  graph::SyntheticNetworkConfig cfg;
  cfg.rows = args.GetInt("rows", 20);
  cfg.cols = args.GetInt("cols", 20);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const auto network = graph::BuildSyntheticNetwork(cfg);
  const std::string out = args.Require("out");
  graph::SaveNetworkCsv(network, out);
  std::printf("wrote %s_vertices.csv / %s_edges.csv (%s)\n", out.c_str(),
              out.c_str(), network.Summary().c_str());
  return 0;
}

int CmdSimulate(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  traj::TrajectoryGeneratorConfig cfg;
  cfg.num_trips = args.GetInt("trips", 700);
  cfg.num_drivers = args.GetInt("drivers", 40);
  cfg.min_trip_distance_m = args.GetDouble("min-distance", 2500.0);
  cfg.max_path_vertices = args.GetInt("max-vertices", 60);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const auto trips = traj::TrajectoryGenerator(network, cfg).Generate();
  const std::string out = args.Require("out");
  traj::SaveTrips(trips, out);
  std::printf("wrote %zu trips to %s\n", trips.size(), out.c_str());
  return 0;
}

data::RankingDataset BuildDataset(const graph::RoadNetwork& network,
                                  const std::vector<traj::TripPath>& trips,
                                  const Args& args) {
  data::CandidateGenConfig gen;
  gen.strategy = ParseStrategy(args.Get("strategy", "dtkdi"));
  gen.k = args.GetInt("k", 10);
  gen.similarity_threshold = args.GetDouble("threshold", 0.6);
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen);
  return dataset;
}

int CmdTrain(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  const auto trips = traj::LoadTrips(network, args.Require("trips"));
  auto dataset = BuildDataset(network, trips, args);
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 11)));
  const auto split = data::SplitDataset(dataset, 0.8, 0.1, rng);

  const int m = args.GetInt("m", 64);
  embedding::Node2VecConfig n2v;
  n2v.skipgram.dims = m;
  n2v.seed = static_cast<uint64_t>(args.GetInt("seed", 11)) + 1;
  std::printf("training node2vec (%d dims)...\n", m);
  const auto table = embedding::TrainNode2Vec(network, n2v);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = static_cast<size_t>(m);
  model_cfg.hidden_size = static_cast<size_t>(args.GetInt("hidden", 64));
  model_cfg.finetune_embedding = args.GetInt("finetune", 1) != 0;
  model_cfg.multi_task = args.GetInt("multitask", 0) != 0;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  model.InitializeEmbedding(table);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = args.GetInt("epochs", 20);
  train_cfg.learning_rate = args.GetDouble("lr", 3e-3);
  train_cfg.verbose = true;
  SetLogLevel(LogLevel::kInfo);
  std::printf("training PathRank (%s)...\n",
              model_cfg.VariantName().c_str());
  core::TrainPathRank(model, split.train, split.validation, train_cfg);

  const auto result = core::Evaluate(model, split.test);
  std::printf("held-out test: %s\n", result.ToString().c_str());
  const std::string out = args.Require("out");
  core::SaveModel(model, out);
  std::printf("wrote model checkpoint to %s\n", out.c_str());
  return 0;
}

int CmdEvaluate(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  const auto trips = traj::LoadTrips(network, args.Require("trips"));
  auto dataset = BuildDataset(network, trips, args);
  auto model = core::LoadModel(args.Require("model"));
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  const auto result = core::Evaluate(*model, dataset);
  std::printf("%s\n", result.ToString().c_str());
  return 0;
}

data::CandidateGenConfig GenConfigFromArgs(const Args& args) {
  data::CandidateGenConfig gen;
  gen.strategy = ParseStrategy(args.Get("strategy", "dtkdi"));
  gen.k = args.GetInt("k", 10);
  // Same default BuildDataset uses, so serving candidates match a model
  // trained with the defaults.
  gen.similarity_threshold = args.GetDouble("threshold", 0.6);
  return gen;
}

int CmdRank(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  auto model = core::LoadModel(args.Require("model"));
  const auto from = static_cast<graph::VertexId>(args.GetInt("from", 0));
  const auto to = static_cast<graph::VertexId>(
      args.GetInt("to", static_cast<int>(network.num_vertices()) - 1));
  if (from >= network.num_vertices() || to >= network.num_vertices()) {
    std::fprintf(stderr, "vertex id out of range\n");
    return 1;
  }
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  serving::ServingOptions options;
  options.num_replicas = 1;
  options.candidates = GenConfigFromArgs(args);
  const serving::ServingEngine engine(
      network, serving::ModelSnapshot::Capture(*model), options);
  const auto ranked = engine.Rank(from, to);
  std::printf("%zu candidates for %u -> %u:\n", ranked.size(), from, to);
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("#%zu score=%.4f length=%.0fm time=%.0fs vertices=%zu\n",
                i + 1, ranked[i].score, ranked[i].path.length_m,
                ranked[i].path.time_s, ranked[i].path.num_vertices());
  }
  return 0;
}

/// Reads "source,destination" lines (blank lines and '#' comments are
/// skipped) into rank queries.
std::vector<serving::RankQuery> LoadQueriesCsv(
    const std::string& path, const graph::RoadNetwork& network) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open queries file %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<serving::RankQuery> queries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    unsigned src = 0;
    unsigned dst = 0;
    if (std::sscanf(line.c_str(), " %u , %u", &src, &dst) != 2) {
      std::fprintf(stderr, "%s:%zu: expected 'source,destination'\n",
                   path.c_str(), line_no);
      std::exit(2);
    }
    if (src >= network.num_vertices() || dst >= network.num_vertices()) {
      std::fprintf(stderr, "%s:%zu: vertex id out of range\n", path.c_str(),
                   line_no);
      std::exit(2);
    }
    queries.push_back({src, dst});
  }
  return queries;
}

/// Samples random (source != destination) query pairs.
std::vector<serving::RankQuery> SampleQueries(
    const graph::RoadNetwork& network, int count, uint64_t seed) {
  if (count <= 0) {
    std::fprintf(stderr, "--num-queries must be positive\n");
    std::exit(2);
  }
  if (network.num_vertices() < 2) {
    std::fprintf(stderr, "network too small to sample queries\n");
    std::exit(2);
  }
  Rng rng(seed);
  const auto n = static_cast<int64_t>(network.num_vertices());
  std::vector<serving::RankQuery> queries;
  queries.reserve(static_cast<size_t>(count));
  while (queries.size() < static_cast<size_t>(count)) {
    const auto src = static_cast<graph::VertexId>(rng.NextInt(0, n - 1));
    const auto dst = static_cast<graph::VertexId>(rng.NextInt(0, n - 1));
    if (src == dst) continue;
    queries.push_back({src, dst});
  }
  return queries;
}

serving::ShardPolicy ParseShardPolicy(const std::string& name) {
  if (name == "hash") return serving::ShardPolicy::kHash;
  if (name == "rr" || name == "roundrobin") {
    return serving::ShardPolicy::kRoundRobin;
  }
  std::fprintf(stderr, "unknown shard policy: %s (hash|rr)\n", name.c_str());
  std::exit(2);
}

/// Polls a model checkpoint's mtime and hot-swaps the served snapshot when
/// the file changes — the `serve --watch-model` reload path. The swap
/// itself is one atomic pointer exchange inside the engine(s); in-flight
/// requests finish on the snapshot they started with.
class ModelWatcher {
 public:
  ModelWatcher(std::string model_path, const graph::RoadNetwork& network,
               std::function<void(std::shared_ptr<const serving::ModelSnapshot>)>
                   swap,
               int interval_ms)
      : model_path_(std::move(model_path)),
        network_(&network),
        swap_(std::move(swap)),
        interval_ms_(interval_ms),
        last_mtime_(Mtime(model_path_)) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~ModelWatcher() {
    stop_.store(true);
    thread_.join();
  }

  uint64_t swaps() const { return swaps_.load(); }

 private:
  static std::filesystem::file_time_type Mtime(const std::string& path) {
    std::error_code ec;
    const auto t = std::filesystem::last_write_time(path, ec);
    return ec ? std::filesystem::file_time_type{} : t;
  }

  /// Sleeps one poll interval in small slices so destruction never waits
  /// out a long --watch-interval-ms.
  void InterruptibleSleep() const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(interval_ms_);
    while (!stop_.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  void Loop() {
    while (!stop_.load()) {
      InterruptibleSleep();
      if (stop_.load()) break;
      const auto mtime = Mtime(model_path_);
      if (mtime == last_mtime_ ||
          mtime == std::filesystem::file_time_type{}) {
        continue;
      }
      try {
        auto next = core::LoadModel(model_path_);
        if (next->vocab_size() != network_->num_vertices()) {
          std::fprintf(stderr,
                       "watch-model: %s no longer matches the network; "
                       "keeping the current snapshot\n",
                       model_path_.c_str());
          last_mtime_ = mtime;  // not transient; wait for the next rewrite
          continue;
        }
        swap_(serving::ModelSnapshot::Capture(*next));
        last_mtime_ = mtime;
        swaps_.fetch_add(1);
        std::printf("watch-model: hot-swapped snapshot from %s\n",
                    model_path_.c_str());
      } catch (const std::exception& e) {
        // A partially written checkpoint mid-save is expected. last_mtime_
        // deliberately stays stale so the next tick retries even when the
        // writer finishes within the same coarse mtime granule.
        std::fprintf(stderr, "watch-model: reload failed (%s); will retry\n",
                     e.what());
      }
    }
  }

  const std::string model_path_;
  const graph::RoadNetwork* network_;
  const std::function<void(std::shared_ptr<const serving::ModelSnapshot>)>
      swap_;
  const int interval_ms_;
  std::filesystem::file_time_type last_mtime_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> swaps_{0};
  std::thread thread_;
};

/// Polls the graph source's mtime and swaps a freshly loaded network into
/// the GraphStore when it changes — the `serve --watch-graph` reload
/// path, ModelWatcher's graph-side twin. Watches the edges CSV (the file
/// a re-export rewrites); in-flight route queries finish on the snapshot
/// they captured, and the superseded graph is freed when the last of
/// them returns.
class GraphWatcher {
 public:
  GraphWatcher(std::string watch_path,
               std::function<graph::RoadNetwork()> load,
               serving::GraphStore* store, int interval_ms)
      : watch_path_(std::move(watch_path)),
        load_(std::move(load)),
        store_(store),
        interval_ms_(interval_ms),
        last_mtime_(Mtime(watch_path_)) {
    thread_ = std::thread([this] { Loop(); });
  }

  ~GraphWatcher() {
    stop_.store(true);
    thread_.join();
  }

  uint64_t swaps() const { return swaps_.load(); }

 private:
  static std::filesystem::file_time_type Mtime(const std::string& path) {
    std::error_code ec;
    const auto t = std::filesystem::last_write_time(path, ec);
    return ec ? std::filesystem::file_time_type{} : t;
  }

  void InterruptibleSleep() const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(interval_ms_);
    while (!stop_.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  void Loop() {
    while (!stop_.load()) {
      InterruptibleSleep();
      if (stop_.load()) break;
      const auto mtime = Mtime(watch_path_);
      if (mtime == last_mtime_ ||
          mtime == std::filesystem::file_time_type{}) {
        continue;
      }
      try {
        graph::RoadNetwork next = load_();
        const auto current = store_->Current();
        if (next.num_vertices() != current->network().num_vertices()) {
          // The model's vocabulary (and the /v1/rank engine) is pinned to
          // the boot-time vertex set; a graph that changes it needs a
          // restart with a matching model, not a hot swap.
          std::fprintf(stderr,
                       "watch-graph: %s changed its vertex count (%zu -> "
                       "%zu); the model is pinned to the boot graph — "
                       "keeping the current snapshot\n",
                       watch_path_.c_str(),
                       current->network().num_vertices(),
                       next.num_vertices());
          last_mtime_ = mtime;  // not transient; wait for the next rewrite
          continue;
        }
        store_->SwapNetwork(std::move(next));
        last_mtime_ = mtime;
        swaps_.fetch_add(1);
        std::printf("watch-graph: hot-swapped graph from %s (epoch %llu)\n",
                    watch_path_.c_str(),
                    static_cast<unsigned long long>(store_->epoch()));
      } catch (const std::exception& e) {
        // A partially written CSV mid-export is expected. last_mtime_
        // deliberately stays stale so the next tick retries even when the
        // writer finishes within the same coarse mtime granule.
        std::fprintf(stderr, "watch-graph: reload failed (%s); will retry\n",
                     e.what());
      }
    }
  }

  const std::string watch_path_;
  const std::function<graph::RoadNetwork()> load_;
  serving::GraphStore* store_;
  const int interval_ms_;
  std::filesystem::file_time_type last_mtime_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> swaps_{0};
  std::thread thread_;
};

/// SIGINT/SIGTERM flag for `serve --http`: handlers may only touch
/// lock-free atomics, so the serving loop polls this and does the actual
/// shutdown outside signal context.
std::atomic<bool> g_http_interrupted{false};

void OnHttpSignal(int /*signum*/) { g_http_interrupted.store(true); }

/// `serve --http PORT`: serves the engine stack over HTTP until a signal
/// arrives, then reports the traffic counters. The backend seams route
/// through whichever composition the flags built — sharded, coalescing
/// queue, or bare engine.
int RunHttpFrontEnd(const Args& args, const graph::RoadNetwork& network,
                    serving::ServingEngine* engine,
                    serving::ShardedEngine* sharded,
                    serving::BatchingQueue* queue,
                    const ModelWatcher* watcher) {
  serving::HttpServerOptions options;
  options.bind_address = args.Get("http-addr", "0.0.0.0");
  const int port = args.GetInt("http", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "--http expects a port in [0, 65535]\n");
    return 2;
  }
  options.port = static_cast<uint16_t>(port);
  options.max_inflight =
      static_cast<size_t>(std::max(1, args.GetInt("max-inflight", 64)));
  // 0 = auto (max_inflight + 4): admission stays the binding constraint
  // and spare workers keep /healthz answering under a saturated engine.
  options.num_threads =
      static_cast<size_t>(std::max(0, args.GetInt("http-threads", 0)));
  options.max_queue_wait_us = std::max(0, args.GetInt("max-queue-wait-us", 0));
  options.idle_timeout_s = std::max(1, args.GetInt("idle-timeout-s", 30));
  options.request_deadline_s =
      std::max(1, args.GetInt("request-deadline-s", 60));
  options.default_deadline_ms =
      std::max(0, args.GetInt("default-deadline-ms", 0));
  options.max_deadline_ms = std::max(0, args.GetInt("max-deadline-ms", 0));
  if (options.num_threads != 0 &&
      options.num_threads <= options.max_inflight) {
    std::fprintf(stderr,
                 "warning: --http-threads %zu <= --max-inflight %zu: "
                 "admission control cannot engage (concurrency is already "
                 "capped by the worker count)\n",
                 options.num_threads, options.max_inflight);
  }

  serving::HttpBackend backend;
  backend.num_vertices = network.num_vertices();
  if (sharded != nullptr) {
    backend.rank = [sharded](graph::VertexId s, graph::VertexId d) {
      return sharded->Rank(s, d);
    };
    backend.score = [sharded](std::vector<routing::Path> paths) {
      return sharded->ScoreBatch(paths);
    };
    backend.swap_count = [sharded] {
      uint64_t total = 0;
      for (size_t i = 0; i < sharded->num_shards(); ++i) {
        total += sharded->shard(i).swap_count();
      }
      return total;
    };
  } else if (queue != nullptr) {
    // HTTP workers are plain threads, so blocking on queue futures here
    // is the supported submit-and-wait pattern (batching_queue.h).
    backend.rank = [queue](graph::VertexId s, graph::VertexId d) {
      return queue->SubmitRank(s, d).get();
    };
    backend.score = [queue](std::vector<routing::Path> paths) {
      return queue->SubmitScore(std::move(paths)).get();
    };
    backend.swap_count = [engine] { return engine->swap_count(); };
  } else {
    backend.rank = [engine](graph::VertexId s, graph::VertexId d) {
      return engine->Rank(s, d);
    };
    backend.score = [engine](std::vector<routing::Path> paths) {
      return engine->ScoreBatch(paths);
    };
    backend.swap_count = [engine] { return engine->swap_count(); };
  }

  // --fault-spec: deterministic chaos at the backend seams (sites
  // "rank", "score", "route"), for drills and for reproducing what
  // chaos_test exercises programmatically. The wrappers go in BEFORE the
  // planner captures backend.score, so injected scoring faults hit
  // /v1/route too.
  std::shared_ptr<serving::FaultInjector> faults;
  if (args.Has("fault-spec")) {
    try {
      faults = serving::FaultInjector::Parse(
          args.Get("fault-spec", ""),
          static_cast<uint64_t>(args.GetInt("fault-seed", 1)));
    } catch (const serving::FaultSpecError& e) {
      std::fprintf(stderr, "--fault-spec: %s\n", e.what());
      return 2;
    }
  }
  if (faults != nullptr && faults->enabled()) {
    backend.rank = [faults, inner = backend.rank](graph::VertexId s,
                                                  graph::VertexId d) {
      faults->Inject("rank");
      return inner(s, d);
    };
    backend.score = [faults, inner = backend.score](
                        std::vector<routing::Path> paths) {
      faults->Inject("score");
      return inner(std::move(paths));
    };
  }

  // The live graph behind /v1/route and /v1/traffic: a GraphStore seeded
  // with a copy of the boot network (epoch 0). Traffic batches and
  // --watch-graph reloads swap new snapshots in; the /v1/rank engine
  // stays pinned to the boot network (its candidate generator and the
  // model vocabulary were built against it).
  serving::GraphStore graph_store(network);

  // --spur-engine: which engine runs the Yen spur searches behind
  // /v1/route. "alt" turns on the GraphStore's preprocessing lifecycle:
  // landmark tables built at boot, rebuilt in the background after every
  // /v1/traffic batch or --watch-graph swap, with mid-rebuild queries
  // falling back to exact Dijkstra.
  serving::SpurEngine spur_engine = serving::SpurEngine::kDijkstra;
  const std::string spur_name = args.Get("spur-engine", "dijkstra");
  if (!serving::ParseSpurEngine(spur_name, &spur_engine)) {
    std::fprintf(stderr,
                 "--spur-engine must be dijkstra, bidi, or alt (got %s)\n",
                 spur_name.c_str());
    return 2;
  }
  const int num_landmarks = args.GetInt("landmarks", 8);
  if (num_landmarks < 1) {
    std::fprintf(stderr, "--landmarks must be >= 1 (got %d)\n",
                 num_landmarks);
    return 2;
  }
  if (spur_engine == serving::SpurEngine::kAlt) {
    serving::PreprocessOptions preprocess;
    preprocess.num_landmarks = num_landmarks;
    graph_store.EnablePreprocessing(preprocess);
  }

  // The online route pipeline behind POST /v1/route: candidate
  // enumeration + LRU candidate cache + scoring through the SAME seam
  // backend.score uses, so /v1/route composes with --batch and --shards
  // for free. Built over the GraphStore: each query captures the current
  // snapshot (and, for ALT, the preprocessing artifact) once, and cached
  // candidate sets invalidate when the epoch moves on.
  serving::RoutePlannerConfig route_config;
  route_config.store = &graph_store;
  route_config.candidates = GenConfigFromArgs(args);
  route_config.cache_capacity =
      static_cast<size_t>(std::max(0, args.GetInt("route-cache", 1024)));
  route_config.spur_engine = spur_engine;
  route_config.num_landmarks = num_landmarks;
  const serving::RoutePlanner planner(route_config, backend.score);
  backend.route = [&planner](const serving::RouteRequest& request) {
    return planner.Plan(request);
  };
  backend.traffic =
      [&graph_store](const std::vector<graph::TrafficUpdate>& updates) {
        return graph_store.ApplyTraffic(updates);
      };
  backend.graph_epoch = [&graph_store] { return graph_store.epoch(); };
  backend.route_planner_stats = [&planner] { return planner.stats(); };
  backend.preprocessing_stats = [&graph_store] {
    return graph_store.preprocessing_stats();
  };
  if (faults != nullptr && faults->enabled()) {
    // The "route" site stalls/fails between deadline anchoring (HTTP
    // parse) and Plan(), so an injected delay visibly consumes budget.
    backend.route = [faults, inner = backend.route](
                        const serving::RouteRequest& request) {
      faults->Inject("route");
      return inner(request);
    };
  }

  // --watch-graph: poll the graph source and hot-swap re-exports, the
  // graph-side analogue of --watch-model. Watches the edges CSV — the
  // file a re-export rewrites for either --graph or --network serving.
  std::unique_ptr<GraphWatcher> graph_watcher;
  if (args.GetInt("watch-graph", 0) != 0) {
    const bool has_graph = args.Has("graph");
    const std::string watch_path =
        has_graph ? args.Get("graph", "")
                  : args.Get("network", "") + "_edges.csv";
    auto load = [has_graph, &args]() {
      return has_graph ? graph::LoadNetworkEdgesCsv(args.Get("graph", ""))
                       : graph::LoadNetworkCsv(args.Get("network", ""));
    };
    graph_watcher = std::make_unique<GraphWatcher>(
        watch_path, std::move(load), &graph_store,
        std::max(1, args.GetInt("watch-interval-ms", 200)));
  }

  serving::HttpServer server(std::move(backend), options);
  server.Start();
  std::printf("route planner: strategy %s, k=%d, cache %zu entries, "
              "spur engine %s%s\n",
              data::CandidateStrategyName(route_config.candidates.strategy)
                  .c_str(),
              route_config.candidates.k, route_config.cache_capacity,
              serving::SpurEngineName(spur_engine),
              spur_engine == serving::SpurEngine::kAlt
                  ? StrFormat(" (%d landmarks)", num_landmarks).c_str()
                  : "");
  std::printf("HTTP serving on %s:%u  (threads=%zu, max_inflight=%zu, "
              "max_queue_wait_us=%lld%s%s%s%s)\n",
              options.bind_address.c_str(), server.port(),
              server.options().num_threads, options.max_inflight,
              static_cast<long long>(options.max_queue_wait_us),
              queue != nullptr ? ", batched" : "",
              sharded != nullptr ? ", sharded" : "",
              watcher != nullptr ? ", watch-model" : "",
              graph_watcher != nullptr ? ", watch-graph" : "");
  std::printf("timeouts: idle %d s, request %d s; route budget: default %lld "
              "ms, max %lld ms (0 = unbounded)\n",
              options.idle_timeout_s, options.request_deadline_s,
              static_cast<long long>(options.default_deadline_ms),
              static_cast<long long>(options.max_deadline_ms));
  if (faults != nullptr && faults->enabled()) {
    std::printf("FAULT INJECTION ACTIVE: %s (seed %d)\n",
                args.Get("fault-spec", "").c_str(),
                args.GetInt("fault-seed", 1));
  }
  std::printf("endpoints: POST /v1/rank  POST /v1/score  POST /v1/route  "
              "POST /v1/traffic  GET /healthz  GET /statsz  "
              "(Ctrl-C to stop)\n");

  g_http_interrupted.store(false);
  std::signal(SIGINT, OnHttpSignal);
  std::signal(SIGTERM, OnHttpSignal);
  while (!g_http_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  server.Stop();

  const auto stats = server.stats();
  std::printf("\nshutting down: %llu connections, %llu requests, "
              "%llu shed\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.shed_total));
  std::printf("rank:  %llu requests  p50 %.2f ms  p99 %.2f ms\n",
              static_cast<unsigned long long>(stats.rank.requests),
              stats.rank.latency_p50_s * 1e3, stats.rank.latency_p99_s * 1e3);
  std::printf("score: %llu requests  p50 %.2f ms  p99 %.2f ms\n",
              static_cast<unsigned long long>(stats.score.requests),
              stats.score.latency_p50_s * 1e3,
              stats.score.latency_p99_s * 1e3);
  std::printf("route: %llu requests  p50 %.2f ms  p99 %.2f ms  "
              "cache %llu hit / %llu miss\n",
              static_cast<unsigned long long>(stats.route.requests),
              stats.route.latency_p50_s * 1e3,
              stats.route.latency_p99_s * 1e3,
              static_cast<unsigned long long>(planner.cache_hits()),
              static_cast<unsigned long long>(planner.cache_misses()));
  std::printf("graph: epoch %llu  %llu traffic batch(es)  "
              "%llu invalidation(s)  %llu single-flight wait(s)  "
              "%llu enumeration(s)\n",
              static_cast<unsigned long long>(graph_store.epoch()),
              static_cast<unsigned long long>(graph_store.traffic_batches()),
              static_cast<unsigned long long>(planner.invalidations()),
              static_cast<unsigned long long>(planner.single_flight_waits()),
              static_cast<unsigned long long>(planner.enumerations()));
  if (spur_engine == serving::SpurEngine::kAlt) {
    const serving::PreprocessingStats pre = graph_store.preprocessing_stats();
    std::printf("preprocessing: %d landmarks  %llu rebuild(s)  "
                "p50 %.1f ms  p99 %.1f ms  %llu ALT fallback(s)\n",
                pre.landmarks,
                static_cast<unsigned long long>(pre.rebuilds),
                pre.rebuild_p50_s * 1e3, pre.rebuild_p99_s * 1e3,
                static_cast<unsigned long long>(planner.alt_fallbacks()));
  }
  std::printf("deadlines: %llu exceeded (504), %llu degraded (partial), "
              "route timeouts %llu\n",
              static_cast<unsigned long long>(stats.deadline_exceeded_total),
              static_cast<unsigned long long>(stats.degraded_total),
              static_cast<unsigned long long>(stats.route.timeouts));
  if (faults != nullptr && faults->enabled()) {
    std::printf("fault injection: %llu delay(s), %llu error(s) fired\n",
                static_cast<unsigned long long>(faults->injected_delays()),
                static_cast<unsigned long long>(faults->injected_errors()));
  }
  if (watcher != nullptr) {
    std::printf("watch-model: %llu hot swap(s) while serving\n",
                static_cast<unsigned long long>(watcher->swaps()));
  }
  if (graph_watcher != nullptr) {
    std::printf("watch-graph: %llu hot swap(s) while serving\n",
                static_cast<unsigned long long>(graph_watcher->swaps()));
  }
  return 0;
}

/// Sorts `latency` and prints the wall-clock / QPS / percentile report
/// shared by the serve drive modes. PercentileSorted keeps the quantile
/// convention identical to the gated bench metrics.
void ReportServeStats(std::vector<double>& latency, double wall_s,
                      size_t candidates_served) {
  std::sort(latency.begin(), latency.end());
  auto pct = [&](double p) { return PercentileSorted(latency, p) * 1e3; };
  double mean_ms = 0.0;
  for (double s : latency) mean_ms += s;
  mean_ms = mean_ms / static_cast<double>(latency.size()) * 1e3;

  std::printf("%zu candidates served\n", candidates_served);
  std::printf("wall %.3f s  =>  %.1f QPS\n", wall_s,
              static_cast<double>(latency.size()) / wall_s);
  std::printf("latency/query: mean %.2f ms  p50 %.2f ms  p95 %.2f ms  "
              "p99 %.2f ms\n",
              mean_ms, pct(0.50), pct(0.95), pct(0.99));
}

/// Serving network source: --network PREFIX (the SaveNetworkCsv pair) or
/// --graph EDGES.csv (edges-only; vertex set inferred, coordinates
/// zeroed). Exactly one must be given.
graph::RoadNetwork LoadServeNetwork(const Args& args) {
  const bool has_network = args.Has("network");
  const bool has_graph = args.Has("graph");
  if (has_network == has_graph) {
    std::fprintf(stderr,
                 "serve needs exactly one of --network PREFIX or "
                 "--graph EDGES.csv\n");
    std::exit(2);
  }
  return has_graph ? graph::LoadNetworkEdgesCsv(args.Get("graph", ""))
                   : graph::LoadNetworkCsv(args.Get("network", ""));
}

int CmdServe(const Args& args) {
  const auto network = LoadServeNetwork(args);
  auto model = core::LoadModel(args.Require("model"));
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  const int threads = args.GetInt("threads", 0);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  if (threads > 0) SetNumThreads(static_cast<size_t>(threads));

  const int replicas = args.GetInt("replicas", 0);
  if (replicas < 0) {
    std::fprintf(stderr, "--replicas must be >= 0 (0 = one per thread)\n");
    return 2;
  }
  const int shards = args.GetInt("shards", 0);
  if (shards < 0) {
    std::fprintf(stderr, "--shards must be >= 0 (0 = unsharded)\n");
    return 2;
  }
  const bool batch = args.GetInt("batch", 0) != 0;
  if (batch && shards > 0) {
    std::fprintf(stderr,
                 "--batch coalesces onto one engine; combine with --shards "
                 "by running one queue per shard in library code\n");
    return 2;
  }

  serving::ServingOptions options;
  options.num_replicas = static_cast<size_t>(replicas);
  options.candidates = GenConfigFromArgs(args);
  const auto snapshot = serving::ModelSnapshot::Capture(*model);
  model.reset();  // the snapshot owns its own copy of the parameters

  // One of the two is live; both expose Rank + SwapSnapshot.
  std::unique_ptr<serving::ServingEngine> engine;
  std::unique_ptr<serving::ShardedEngine> sharded;
  if (shards > 0) {
    serving::ShardedOptions shard_options;
    shard_options.num_shards = static_cast<size_t>(shards);
    shard_options.policy = ParseShardPolicy(args.Get("shard-policy", "hash"));
    shard_options.engine_options = options;
    sharded = std::make_unique<serving::ShardedEngine>(network, snapshot,
                                                       shard_options);
  } else {
    engine =
        std::make_unique<serving::ServingEngine>(network, snapshot, options);
  }
  auto rank = [&](const serving::RankQuery& q) {
    return sharded ? sharded->Rank(q.source, q.destination)
                   : engine->Rank(q.source, q.destination);
  };

  // The coalescing front end, shared by the HTTP server and the
  // closed-loop drive below.
  std::unique_ptr<serving::BatchingQueue> queue;
  if (batch) {
    serving::BatchingOptions batch_options;
    batch_options.max_batch =
        static_cast<size_t>(std::max(1, args.GetInt("max-batch", 64)));
    batch_options.max_wait_us = std::max(0, args.GetInt("max-wait-us", 200));
    queue = std::make_unique<serving::BatchingQueue>(*engine, batch_options);
  }

  std::unique_ptr<ModelWatcher> watcher;
  if (args.GetInt("watch-model", 0) != 0) {
    watcher = std::make_unique<ModelWatcher>(
        args.Require("model"), network,
        [&](std::shared_ptr<const serving::ModelSnapshot> next) {
          if (sharded) {
            sharded->SwapSnapshot(std::move(next));
          } else {
            engine->SwapSnapshot(std::move(next));
          }
        },
        std::max(1, args.GetInt("watch-interval-ms", 200)));
  }

  // --http: network front end instead of the self-drive (no query set
  // needed; traffic arrives over the wire). Self-drive-only flags are an
  // error here, not a silent no-op — same rule RejectUnknown enforces.
  if (args.Has("http")) {
    for (const char* flag : {"queries", "num-queries", "clients", "repeat",
                             "seed"}) {
      if (args.Has(flag)) {
        std::fprintf(stderr,
                     "--%s drives the self-serve benchmark and has no "
                     "effect with --http\n",
                     flag);
        return 2;
      }
    }
    return RunHttpFrontEnd(args, network, engine.get(), sharded.get(),
                           queue.get(), watcher.get());
  }
  // Symmetric rule: HTTP-only flags without --http are an error too —
  // the self-drive has no admission control, and no /v1/route planner
  // whose cache --route-cache would size.
  for (const char* flag :
       {"http-addr", "http-threads", "max-inflight", "max-queue-wait-us",
        "route-cache", "spur-engine", "landmarks", "idle-timeout-s",
        "request-deadline-s", "default-deadline-ms", "max-deadline-ms",
        "fault-spec", "fault-seed", "watch-graph"}) {
    if (args.Has(flag)) {
      std::fprintf(stderr, "--%s configures the HTTP front end; add --http "
                           "PORT or drop it\n",
                   flag);
      return 2;
    }
  }

  std::vector<serving::RankQuery> queries;
  if (args.Has("queries")) {
    queries = LoadQueriesCsv(args.Get("queries", ""), network);
  } else {
    queries = SampleQueries(network, args.GetInt("num-queries", 64),
                            static_cast<uint64_t>(args.GetInt("seed", 1)));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries to serve\n");
    return 1;
  }
  const int repeat = std::max(1, args.GetInt("repeat", 1));
  const size_t total = queries.size() * static_cast<size_t>(repeat);

  // Warm-up (pool spin-up, scratch allocation, cache warming).
  for (size_t q = 0; q < std::min<size_t>(queries.size(), 4); ++q) {
    rank(queries[q]);
  }

  // Per-query latencies land in disjoint slots; workers never share state.
  std::vector<double> latency(total);
  std::vector<size_t> candidate_counts(total, 0);
  Stopwatch wall;
  double wall_s = 0.0;

  if (batch) {
    // Closed-loop clients on plain threads (pool workers must never block
    // on queue futures — see batching_queue.h); the global pool stays
    // available to the dispatcher's coalesced kernels.
    const size_t clients = static_cast<size_t>(
        std::max(1, args.GetInt("clients", static_cast<int>(GetNumThreads()))));
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1);
          if (i >= total) break;
          const auto& query = queries[i % queries.size()];
          Stopwatch per_query;
          const auto ranked =
              queue->SubmitRank(query.source, query.destination).get();
          latency[i] = per_query.ElapsedSeconds();
          candidate_counts[i] = ranked.size();
        }
      });
    }
    for (auto& w : workers) w.join();
    wall_s = wall.ElapsedSeconds();
    std::printf(
        "served %zu queries (%zu unique x %d) batched via %zu clients: "
        "%llu flushes, %.1f rows/flush (max-batch %zu, max-wait %lld us)\n",
        total, queries.size(), repeat, clients,
        static_cast<unsigned long long>(queue->num_flushes()),
        queue->num_flushes() > 0
            ? static_cast<double>(queue->num_rows()) /
                  static_cast<double>(queue->num_flushes())
            : 0.0,
        queue->options().max_batch,
        static_cast<long long>(queue->options().max_wait_us));
  } else {
    ParallelForShards(0, total, [&](size_t /*shard*/, size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const auto& query = queries[i % queries.size()];
        Stopwatch per_query;
        const auto ranked = rank(query);
        latency[i] = per_query.ElapsedSeconds();
        candidate_counts[i] = ranked.size();
      }
    });
    wall_s = wall.ElapsedSeconds();
    if (sharded) {
      std::printf("served %zu queries (%zu unique x %d) on %zu threads, "
                  "%zu shards (%s)\n",
                  total, queries.size(), repeat, GetNumThreads(),
                  sharded->num_shards(),
                  sharded->options().policy == serving::ShardPolicy::kHash
                      ? "hash"
                      : "rr");
    } else {
      std::printf("served %zu queries (%zu unique x %d) on %zu threads, "
                  "%zu replicas\n",
                  total, queries.size(), repeat, GetNumThreads(),
                  engine->num_replicas());
    }
  }

  size_t candidates_served = 0;
  for (size_t c : candidate_counts) candidates_served += c;
  ReportServeStats(latency, wall_s, candidates_served);
  if (watcher) {
    std::printf("watch-model: %llu hot swap(s) during the run\n",
                static_cast<unsigned long long>(watcher->swaps()));
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: pathrank_cli <command> [--flag value ...]\n"
      "commands:\n"
      "  network   --out PREFIX [--rows N --cols N --seed S]\n"
      "  simulate  --network PREFIX --out TRIPS.csv [--trips N --drivers N]\n"
      "  train     --network PREFIX --trips TRIPS.csv --out MODEL.bin\n"
      "            [--strategy tkdi|dtkdi|penalty --k K --m M --hidden H\n"
      "             --epochs E --lr LR --finetune 0|1 --multitask 0|1]\n"
      "  evaluate  --network PREFIX --trips TRIPS.csv --model MODEL.bin\n"
      "  rank      --network PREFIX --model MODEL.bin --from V --to V\n"
      "            [--strategy tkdi|dtkdi|penalty --k K --threshold T]\n"
      "  serve     (--network PREFIX | --graph EDGES.csv) --model MODEL.bin\n"
      "            [--queries Q.csv | --num-queries N --seed S]\n"
      "            [--threads T --replicas R --repeat K --strategy ... "
      "--k K --threshold T]\n"
      "            [--batch 0|1 --max-batch N --max-wait-us U --clients C]\n"
      "            [--shards N --shard-policy hash|rr]\n"
      "            [--watch-model 0|1 --watch-interval-ms M]\n"
      "            [--http PORT --http-addr A --max-inflight N\n"
      "             --max-queue-wait-us U --http-threads T (0 = auto)\n"
      "             --route-cache N (LRU candidate sets for /v1/route)\n"
      "             --spur-engine dijkstra|bidi|alt (Yen spur searches)\n"
      "             --landmarks N (ALT landmark count, default 8)\n"
      "             --watch-graph 0|1 (hot-swap re-exported graphs)\n"
      "             --idle-timeout-s S --request-deadline-s S\n"
      "             --default-deadline-ms MS --max-deadline-ms MS "
      "(0 = unbounded)\n"
      "             --fault-spec \"site:delay_ms=N:p=F;site:error\" "
      "--fault-seed S]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);

  // Per-subcommand flag allow-lists: a typo'd or misplaced flag is an
  // error, not a silently ignored no-op.
  static const std::map<std::string, std::set<std::string>> kKnownFlags = {
      {"network", {"rows", "cols", "seed", "out"}},
      {"simulate",
       {"network", "trips", "drivers", "min-distance", "max-vertices", "seed",
        "out"}},
      {"train",
       {"network", "trips", "strategy", "k", "threshold", "seed", "m",
        "hidden", "finetune", "multitask", "epochs", "lr", "out"}},
      {"evaluate",
       {"network", "trips", "strategy", "k", "threshold", "model"}},
      {"rank",
       {"network", "model", "from", "to", "strategy", "k", "threshold"}},
      {"serve",
       {"network", "graph", "model", "queries", "num-queries", "seed",
        "threads", "replicas", "repeat", "strategy", "k", "threshold",
        "batch", "max-batch", "max-wait-us", "clients", "shards",
        "shard-policy", "watch-model", "watch-graph", "watch-interval-ms",
        "http", "http-addr", "http-threads", "max-inflight",
        "max-queue-wait-us", "route-cache", "spur-engine", "landmarks",
        "idle-timeout-s", "request-deadline-s", "default-deadline-ms",
        "max-deadline-ms", "fault-spec", "fault-seed"}},
  };
  const auto known = kKnownFlags.find(command);
  if (known != kKnownFlags.end()) {
    args.RejectUnknown(command, known->second);
  }

  try {
    if (command == "network") return CmdNetwork(args);
    if (command == "simulate") return CmdSimulate(args);
    if (command == "train") return CmdTrain(args);
    if (command == "evaluate") return CmdEvaluate(args);
    if (command == "rank") return CmdRank(args);
    if (command == "serve") return CmdServe(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  PrintUsage();
  return 2;
}
