// pathrank_cli — command-line front end for the full pipeline, with file
// persistence between stages so each step can run as a separate process:
//
//   pathrank_cli network  --rows 20 --cols 20 --seed 1 --out net
//   pathrank_cli simulate --network net --trips 700 --drivers 40 \
//                         --out trips.csv
//   pathrank_cli train    --network net --trips trips.csv --m 64 \
//                         --strategy dtkdi --epochs 20 --out model.bin
//   pathrank_cli evaluate --network net --trips trips.csv --model model.bin
//   pathrank_cli rank     --network net --model model.bin --from 12 --to 245
//   pathrank_cli serve    --network net --model model.bin --num-queries 128 \
//                         --threads 4 --repeat 3
//
// `serve` drives the replica-pool ServingEngine with a batch of queries
// (from --queries CSV of "source,destination" lines, or sampled randomly)
// and reports per-query latency percentiles and QPS.
//
// Networks are stored as the CSV pair written by graph::SaveNetworkCsv,
// trips as traj::SaveTrips CSV, models as core::SaveModel checkpoints.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "core/pathrank.h"
#include "graph/graph_io.h"
#include "traj/trip_io.h"

namespace {

using namespace pathrank;

/// Minimal --flag value parser; every flag takes exactly one value.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", key.c_str());
        std::exit(2);
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s expects a value\n", key.c_str());
        std::exit(2);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  /// Errors out (listing the offenders) when a parsed flag is not in the
  /// subcommand's allow-list.
  void RejectUnknown(const std::string& command,
                     const std::set<std::string>& known) const {
    bool any = false;
    for (const auto& [key, value] : values_) {
      if (known.count(key) == 0) {
        std::fprintf(stderr, "unknown flag --%s for command '%s'\n",
                     key.c_str(), command.c_str());
        any = true;
      }
    }
    if (any) std::exit(2);
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? std::stoi(it->second) : fallback;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it != values_.end() ? std::stod(it->second) : fallback;
  }

  std::string Require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

data::CandidateStrategy ParseStrategy(const std::string& name) {
  if (name == "tkdi" || name == "topk") return data::CandidateStrategy::kTopK;
  if (name == "dtkdi" || name == "div") {
    return data::CandidateStrategy::kDiversifiedTopK;
  }
  if (name == "penalty") return data::CandidateStrategy::kPenalty;
  std::fprintf(stderr, "unknown strategy: %s (tkdi|dtkdi|penalty)\n",
               name.c_str());
  std::exit(2);
}

int CmdNetwork(const Args& args) {
  graph::SyntheticNetworkConfig cfg;
  cfg.rows = args.GetInt("rows", 20);
  cfg.cols = args.GetInt("cols", 20);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const auto network = graph::BuildSyntheticNetwork(cfg);
  const std::string out = args.Require("out");
  graph::SaveNetworkCsv(network, out);
  std::printf("wrote %s_vertices.csv / %s_edges.csv (%s)\n", out.c_str(),
              out.c_str(), network.Summary().c_str());
  return 0;
}

int CmdSimulate(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  traj::TrajectoryGeneratorConfig cfg;
  cfg.num_trips = args.GetInt("trips", 700);
  cfg.num_drivers = args.GetInt("drivers", 40);
  cfg.min_trip_distance_m = args.GetDouble("min-distance", 2500.0);
  cfg.max_path_vertices = args.GetInt("max-vertices", 60);
  cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  const auto trips = traj::TrajectoryGenerator(network, cfg).Generate();
  const std::string out = args.Require("out");
  traj::SaveTrips(trips, out);
  std::printf("wrote %zu trips to %s\n", trips.size(), out.c_str());
  return 0;
}

data::RankingDataset BuildDataset(const graph::RoadNetwork& network,
                                  const std::vector<traj::TripPath>& trips,
                                  const Args& args) {
  data::CandidateGenConfig gen;
  gen.strategy = ParseStrategy(args.Get("strategy", "dtkdi"));
  gen.k = args.GetInt("k", 10);
  gen.similarity_threshold = args.GetDouble("threshold", 0.6);
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(network, trips, gen);
  return dataset;
}

int CmdTrain(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  const auto trips = traj::LoadTrips(network, args.Require("trips"));
  auto dataset = BuildDataset(network, trips, args);
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 11)));
  const auto split = data::SplitDataset(dataset, 0.8, 0.1, rng);

  const int m = args.GetInt("m", 64);
  embedding::Node2VecConfig n2v;
  n2v.skipgram.dims = m;
  n2v.seed = static_cast<uint64_t>(args.GetInt("seed", 11)) + 1;
  std::printf("training node2vec (%d dims)...\n", m);
  const auto table = embedding::TrainNode2Vec(network, n2v);

  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = static_cast<size_t>(m);
  model_cfg.hidden_size = static_cast<size_t>(args.GetInt("hidden", 64));
  model_cfg.finetune_embedding = args.GetInt("finetune", 1) != 0;
  model_cfg.multi_task = args.GetInt("multitask", 0) != 0;
  core::PathRankModel model(network.num_vertices(), model_cfg);
  model.InitializeEmbedding(table);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = args.GetInt("epochs", 20);
  train_cfg.learning_rate = args.GetDouble("lr", 3e-3);
  train_cfg.verbose = true;
  SetLogLevel(LogLevel::kInfo);
  std::printf("training PathRank (%s)...\n",
              model_cfg.VariantName().c_str());
  core::TrainPathRank(model, split.train, split.validation, train_cfg);

  const auto result = core::Evaluate(model, split.test);
  std::printf("held-out test: %s\n", result.ToString().c_str());
  const std::string out = args.Require("out");
  core::SaveModel(model, out);
  std::printf("wrote model checkpoint to %s\n", out.c_str());
  return 0;
}

int CmdEvaluate(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  const auto trips = traj::LoadTrips(network, args.Require("trips"));
  auto dataset = BuildDataset(network, trips, args);
  auto model = core::LoadModel(args.Require("model"));
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  const auto result = core::Evaluate(*model, dataset);
  std::printf("%s\n", result.ToString().c_str());
  return 0;
}

data::CandidateGenConfig GenConfigFromArgs(const Args& args) {
  data::CandidateGenConfig gen;
  gen.strategy = ParseStrategy(args.Get("strategy", "dtkdi"));
  gen.k = args.GetInt("k", 10);
  // Same default BuildDataset uses, so serving candidates match a model
  // trained with the defaults.
  gen.similarity_threshold = args.GetDouble("threshold", 0.6);
  return gen;
}

int CmdRank(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  auto model = core::LoadModel(args.Require("model"));
  const auto from = static_cast<graph::VertexId>(args.GetInt("from", 0));
  const auto to = static_cast<graph::VertexId>(
      args.GetInt("to", static_cast<int>(network.num_vertices()) - 1));
  if (from >= network.num_vertices() || to >= network.num_vertices()) {
    std::fprintf(stderr, "vertex id out of range\n");
    return 1;
  }
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  serving::ServingOptions options;
  options.num_replicas = 1;
  options.candidates = GenConfigFromArgs(args);
  const serving::ServingEngine engine(
      network, serving::ModelSnapshot::Capture(*model), options);
  const auto ranked = engine.Rank(from, to);
  std::printf("%zu candidates for %u -> %u:\n", ranked.size(), from, to);
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("#%zu score=%.4f length=%.0fm time=%.0fs vertices=%zu\n",
                i + 1, ranked[i].score, ranked[i].path.length_m,
                ranked[i].path.time_s, ranked[i].path.num_vertices());
  }
  return 0;
}

/// Reads "source,destination" lines (blank lines and '#' comments are
/// skipped) into rank queries.
std::vector<serving::RankQuery> LoadQueriesCsv(
    const std::string& path, const graph::RoadNetwork& network) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open queries file %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<serving::RankQuery> queries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    unsigned src = 0;
    unsigned dst = 0;
    if (std::sscanf(line.c_str(), " %u , %u", &src, &dst) != 2) {
      std::fprintf(stderr, "%s:%zu: expected 'source,destination'\n",
                   path.c_str(), line_no);
      std::exit(2);
    }
    if (src >= network.num_vertices() || dst >= network.num_vertices()) {
      std::fprintf(stderr, "%s:%zu: vertex id out of range\n", path.c_str(),
                   line_no);
      std::exit(2);
    }
    queries.push_back({src, dst});
  }
  return queries;
}

/// Samples random (source != destination) query pairs.
std::vector<serving::RankQuery> SampleQueries(
    const graph::RoadNetwork& network, int count, uint64_t seed) {
  if (count <= 0) {
    std::fprintf(stderr, "--num-queries must be positive\n");
    std::exit(2);
  }
  if (network.num_vertices() < 2) {
    std::fprintf(stderr, "network too small to sample queries\n");
    std::exit(2);
  }
  Rng rng(seed);
  const auto n = static_cast<int64_t>(network.num_vertices());
  std::vector<serving::RankQuery> queries;
  queries.reserve(static_cast<size_t>(count));
  while (queries.size() < static_cast<size_t>(count)) {
    const auto src = static_cast<graph::VertexId>(rng.NextInt(0, n - 1));
    const auto dst = static_cast<graph::VertexId>(rng.NextInt(0, n - 1));
    if (src == dst) continue;
    queries.push_back({src, dst});
  }
  return queries;
}

int CmdServe(const Args& args) {
  const auto network = graph::LoadNetworkCsv(args.Require("network"));
  auto model = core::LoadModel(args.Require("model"));
  if (model->vocab_size() != network.num_vertices()) {
    std::fprintf(stderr, "model/network vertex-count mismatch\n");
    return 1;
  }
  const int threads = args.GetInt("threads", 0);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  if (threads > 0) SetNumThreads(static_cast<size_t>(threads));

  const int replicas = args.GetInt("replicas", 0);
  if (replicas < 0) {
    std::fprintf(stderr, "--replicas must be >= 0 (0 = one per thread)\n");
    return 2;
  }
  serving::ServingOptions options;
  options.num_replicas = static_cast<size_t>(replicas);
  options.candidates = GenConfigFromArgs(args);
  const serving::ServingEngine engine(
      network, serving::ModelSnapshot::Capture(*model), options);

  std::vector<serving::RankQuery> queries;
  if (args.Has("queries")) {
    queries = LoadQueriesCsv(args.Get("queries", ""), network);
  } else {
    queries = SampleQueries(network, args.GetInt("num-queries", 64),
                            static_cast<uint64_t>(args.GetInt("seed", 1)));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no queries to serve\n");
    return 1;
  }
  const int repeat = std::max(1, args.GetInt("repeat", 1));
  const size_t total = queries.size() * static_cast<size_t>(repeat);

  // Warm-up (pool spin-up, scratch allocation, cache warming).
  for (size_t q = 0; q < std::min<size_t>(queries.size(), 4); ++q) {
    engine.Rank(queries[q].source, queries[q].destination);
  }

  // Per-query latencies land in disjoint slots; shards never share state.
  std::vector<double> latency(total);
  std::vector<size_t> candidate_counts(total, 0);
  Stopwatch wall;
  ParallelForShards(0, total, [&](size_t /*shard*/, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const auto& query = queries[i % queries.size()];
      Stopwatch per_query;
      const auto ranked = engine.Rank(query.source, query.destination);
      latency[i] = per_query.ElapsedSeconds();
      candidate_counts[i] = ranked.size();
    }
  });
  const double wall_s = wall.ElapsedSeconds();
  size_t candidates_served = 0;
  for (size_t c : candidate_counts) candidates_served += c;

  std::sort(latency.begin(), latency.end());
  auto pct = [&](double p) {
    const size_t idx = std::min(
        latency.size() - 1,
        static_cast<size_t>(p * static_cast<double>(latency.size())));
    return latency[idx] * 1e3;
  };
  double mean_ms = 0.0;
  for (double s : latency) mean_ms += s;
  mean_ms = mean_ms / static_cast<double>(latency.size()) * 1e3;

  std::printf("served %zu queries (%zu unique x %d) on %zu threads, "
              "%zu replicas, %zu candidates total\n",
              total, queries.size(), repeat, GetNumThreads(),
              engine.num_replicas(), candidates_served);
  std::printf("wall %.3f s  =>  %.1f QPS\n", wall_s,
              static_cast<double>(total) / wall_s);
  std::printf("latency/query: mean %.2f ms  p50 %.2f ms  p95 %.2f ms  "
              "p99 %.2f ms\n",
              mean_ms, pct(0.50), pct(0.95), pct(0.99));
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: pathrank_cli <command> [--flag value ...]\n"
      "commands:\n"
      "  network   --out PREFIX [--rows N --cols N --seed S]\n"
      "  simulate  --network PREFIX --out TRIPS.csv [--trips N --drivers N]\n"
      "  train     --network PREFIX --trips TRIPS.csv --out MODEL.bin\n"
      "            [--strategy tkdi|dtkdi|penalty --k K --m M --hidden H\n"
      "             --epochs E --lr LR --finetune 0|1 --multitask 0|1]\n"
      "  evaluate  --network PREFIX --trips TRIPS.csv --model MODEL.bin\n"
      "  rank      --network PREFIX --model MODEL.bin --from V --to V\n"
      "            [--strategy tkdi|dtkdi|penalty --k K --threshold T]\n"
      "  serve     --network PREFIX --model MODEL.bin\n"
      "            [--queries Q.csv | --num-queries N --seed S]\n"
      "            [--threads T --replicas R --repeat K --strategy ... "
      "--k K --threshold T]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);

  // Per-subcommand flag allow-lists: a typo'd or misplaced flag is an
  // error, not a silently ignored no-op.
  static const std::map<std::string, std::set<std::string>> kKnownFlags = {
      {"network", {"rows", "cols", "seed", "out"}},
      {"simulate",
       {"network", "trips", "drivers", "min-distance", "max-vertices", "seed",
        "out"}},
      {"train",
       {"network", "trips", "strategy", "k", "threshold", "seed", "m",
        "hidden", "finetune", "multitask", "epochs", "lr", "out"}},
      {"evaluate",
       {"network", "trips", "strategy", "k", "threshold", "model"}},
      {"rank",
       {"network", "model", "from", "to", "strategy", "k", "threshold"}},
      {"serve",
       {"network", "model", "queries", "num-queries", "seed", "threads",
        "replicas", "repeat", "strategy", "k", "threshold"}},
  };
  const auto known = kKnownFlags.find(command);
  if (known != kKnownFlags.end()) {
    args.RejectUnknown(command, known->second);
  }

  try {
    if (command == "network") return CmdNetwork(args);
    if (command == "simulate") return CmdSimulate(args);
    if (command == "train") return CmdTrain(args);
    if (command == "evaluate") return CmdEvaluate(args);
    if (command == "rank") return CmdRank(args);
    if (command == "serve") return CmdServe(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  PrintUsage();
  return 2;
}
