#!/usr/bin/env bash
# clang-tidy gate: runs the curated .clang-tidy check set over every
# first-party translation unit and fails on ANY finding (the config
# promotes all enabled checks to errors). CI runs this in the
# static-analysis job; locally it needs clang-tidy on PATH (or
# CLANG_TIDY=... pointing at one) and a configured build directory.
#
# Usage: tools/run_tidy.sh [build-dir]     (default: build)
#
# The build dir must hold compile_commands.json — CMakeLists.txt exports
# it unconditionally, so any configured dir works.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_tidy: '$CLANG_TIDY' not found (set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_tidy: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S $ROOT" >&2
  exit 2
fi

# First-party TUs only: src + tools + bench drivers. Tests are covered
# transitively through headers (HeaderFilterRegex) without paying a
# tidy pass per gtest TU.
mapfile -t FILES < <(cd "$ROOT" && find src tools bench -name '*.cpp' | sort)

echo "run_tidy: ${#FILES[@]} translation units with $("$CLANG_TIDY" --version | head -1)"

status=0
failed=0
for file in "${FILES[@]}"; do
  # Findings are errors (WarningsAsErrors: '*'), so a clean file exits 0
  # quietly and any finding both prints and flips the exit code.
  if ! "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$ROOT/$file" 2>/dev/null; then
    failed=$((failed + 1))
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "run_tidy: findings in $failed file(s)"
else
  echo "run_tidy: clean"
fi
exit "$status"
