// Micro-benchmarks of the node2vec substrate: walk generation and SGNS
// training throughput.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "embedding/node2vec.h"
#include "graph/network_builder.h"

namespace {

using namespace pathrank;

graph::RoadNetwork MakeNetwork(int side) {
  graph::SyntheticNetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.seed = 29;
  return graph::BuildSyntheticNetwork(cfg);
}

void BM_RandomWalkCorpus(benchmark::State& state) {
  const auto net = MakeNetwork(static_cast<int>(state.range(0)));
  embedding::RandomWalkConfig cfg;
  cfg.walk_length = 30;
  cfg.walks_per_vertex = 2;
  const embedding::RandomWalker walker(net, cfg);
  Rng rng(5);
  size_t tokens = 0;
  for (auto _ : state) {
    const auto corpus = walker.GenerateCorpus(rng);
    for (const auto& w : corpus) tokens += w.size();
    benchmark::DoNotOptimize(corpus);
  }
  state.SetItemsProcessed(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_RandomWalkCorpus)->Arg(16)->Arg(32);

void BM_SkipGramEpoch(benchmark::State& state) {
  const auto net = MakeNetwork(20);
  embedding::RandomWalkConfig walk_cfg;
  walk_cfg.walk_length = 25;
  walk_cfg.walks_per_vertex = 4;
  const embedding::RandomWalker walker(net, walk_cfg);
  Rng rng(6);
  const auto corpus = walker.GenerateCorpus(rng);
  embedding::SkipGramConfig sg;
  sg.dims = static_cast<int>(state.range(0));
  sg.epochs = 1;
  for (auto _ : state) {
    auto emb = embedding::TrainSkipGram(corpus, net.num_vertices(), sg, rng);
    benchmark::DoNotOptimize(emb);
  }
}
BENCHMARK(BM_SkipGramEpoch)->Arg(64)->Arg(128);

void BM_Node2VecEndToEnd(benchmark::State& state) {
  const auto net = MakeNetwork(16);
  embedding::Node2VecConfig cfg;
  cfg.walk.walk_length = 20;
  cfg.walk.walks_per_vertex = 4;
  cfg.skipgram.dims = 64;
  cfg.skipgram.epochs = 1;
  for (auto _ : state) {
    auto emb = embedding::TrainNode2Vec(net, cfg);
    benchmark::DoNotOptimize(emb);
  }
}
BENCHMARK(BM_Node2VecEndToEnd);

}  // namespace

BENCHMARK_MAIN();
