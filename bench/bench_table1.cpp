// Reproduces Table 1 of the paper: "Training Data Generation Strategies,
// PR-A1" — PathRank with the embedding matrix B *frozen* at its node2vec
// initialisation, comparing candidate strategies TkDI vs D-TkDI and
// embedding sizes M = 64 vs 128 on MAE / MARE / Kendall tau / Spearman rho.
//
// Paper values (North Jutland, 180M GPS records):
//   TkDI   M=64  : MAE 0.1433  MARE 0.2300  tau 0.6638  rho 0.7044
//   TkDI   M=128 : MAE 0.1168  MARE 0.1875  tau 0.6913  rho 0.7330
//   D-TkDI M=64  : MAE 0.1140  MARE 0.1830  tau 0.6959  rho 0.7346
//   D-TkDI M=128 : MAE 0.0955  MARE 0.1533  tau 0.7077  rho 0.7492
//
// Expected *shape* on the simulated workload: D-TkDI beats TkDI on every
// metric, and M=128 beats M=64 within each strategy. Absolute values
// differ (simulator vs the authors' GPS corpus).
#include <cstdio>

#include "experiment_common.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  const ExperimentScale scale = ResolveScale();
  std::printf(
      "PathRank Table 1 reproduction (PR-A1: frozen embedding), scale=%s\n\n",
      scale.name.c_str());

  PrintTableHeader("Table 1: Training Data Generation Strategies, PR-A1");
  for (const auto strategy : {data::CandidateStrategy::kTopK,
                              data::CandidateStrategy::kDiversifiedTopK}) {
    const Workload workload = BuildWorkload(scale, strategy);
    for (const int m : {64, 128}) {
      const nn::Matrix embeddings =
          TrainEmbeddings(workload.network, scale, m);
      RunSpec spec;
      spec.embedding_dim = m;
      spec.finetune_embedding = false;  // PR-A1
      const ExperimentResult result =
          RunExperiment(workload, embeddings, scale, spec);
      PrintTableRow(data::CandidateStrategyName(strategy), m, result);
    }
  }
  std::printf(
      "\nPaper (Table 1): TkDI/64 .1433/.2300/.6638/.7044 | "
      "TkDI/128 .1168/.1875/.6913/.7330\n"
      "                 D-TkDI/64 .1140/.1830/.6959/.7346 | "
      "D-TkDI/128 .0955/.1533/.7077/.7492\n");
  return 0;
}
