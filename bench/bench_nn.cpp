// Micro-benchmarks of the neural substrate: GEMM kernels and recurrent
// layer forward/backward throughput at the shapes PathRank trains with.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/matrix.h"
#include "nn/recurrent.h"

namespace {

using namespace pathrank;
using namespace pathrank::nn;

Matrix RandomMatrix(size_t r, size_t c, Rng& rng) {
  Matrix m(r, c);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  return m;
}

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = RandomMatrix(32, n, rng);
  const Matrix b = RandomMatrix(n, n, rng);
  Matrix c(32, n);
  for (auto _ : state) {
    GemmNN(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * 32 * n * n) * state.iterations() * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

template <CellType kCell>
void BM_RecurrentForward(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  const size_t batch = 32;
  const size_t steps = 30;
  Rng rng(2);
  auto cell = MakeRecurrentLayer(kCell, hidden, hidden, rng, "cell");
  std::vector<Matrix> x_steps;
  for (size_t t = 0; t < steps; ++t) {
    x_steps.push_back(RandomMatrix(batch, hidden, rng));
  }
  const std::vector<int32_t> lengths(batch, static_cast<int32_t>(steps));
  Matrix h;
  for (auto _ : state) {
    cell->Forward(x_steps, lengths, &h);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * batch * steps));
}
BENCHMARK(BM_RecurrentForward<CellType::kGru>)->Arg(64)->Arg(128);
BENCHMARK(BM_RecurrentForward<CellType::kLstm>)->Arg(64);
BENCHMARK(BM_RecurrentForward<CellType::kRnn>)->Arg(64);

void BM_GruForwardBackward(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  const size_t batch = 32;
  const size_t steps = 30;
  Rng rng(3);
  GruLayer gru(hidden, hidden, rng);
  std::vector<Matrix> x_steps;
  for (size_t t = 0; t < steps; ++t) {
    x_steps.push_back(RandomMatrix(batch, hidden, rng));
  }
  const std::vector<int32_t> lengths(batch, static_cast<int32_t>(steps));
  Matrix h;
  const Matrix d_h = RandomMatrix(batch, hidden, rng);
  std::vector<Matrix> d_x;
  for (auto _ : state) {
    gru.Forward(x_steps, lengths, &h);
    gru.Backward(d_h, &d_x);
    benchmark::DoNotOptimize(d_x);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * batch * steps));
}
BENCHMARK(BM_GruForwardBackward)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
