// Candidate-set diversity figure: the evidence behind the paper's claim
// that D-TkDI yields "a compact set of diversified paths". For both
// strategies, prints (a) the histogram of pairwise weighted-Jaccard
// similarity *within* candidate sets and (b) the histogram of ground-truth
// labels (similarity to the driver's actual path) the training data covers.
#include <cstdio>
#include <vector>

#include "experiment_common.h"
#include "routing/path_similarity.h"

namespace {

constexpr int kBins = 10;

struct Histogram {
  std::vector<double> bins = std::vector<double>(kBins, 0.0);
  double count = 0.0;

  void Add(double value) {
    int b = static_cast<int>(value * kBins);
    if (b >= kBins) b = kBins - 1;
    if (b < 0) b = 0;
    bins[b] += 1.0;
    count += 1.0;
  }

  void Print(const char* label) const {
    std::printf("%-22s", label);
    for (int b = 0; b < kBins; ++b) {
      std::printf(" %5.1f%%", count > 0 ? 100.0 * bins[b] / count : 0.0);
    }
    std::printf("\n");
  }
};

}  // namespace

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  const ExperimentScale scale = ResolveScale();
  std::printf("Candidate-set diversity (scale=%s)\n\n", scale.name.c_str());
  std::printf("%-22s", "bin upper edge");
  for (int b = 1; b <= kBins; ++b) std::printf(" %5.1f ", 0.1 * b);
  std::printf("\n%s\n", std::string(92, '-').c_str());

  for (const auto strategy : {data::CandidateStrategy::kTopK,
                              data::CandidateStrategy::kDiversifiedTopK}) {
    const Workload w = BuildWorkload(scale, strategy);
    Histogram pairwise;
    Histogram labels;
    double mean_pairwise = 0.0;
    double pairwise_n = 0.0;
    for (const auto& split :
         {w.split.train, w.split.validation, w.split.test}) {
      for (const auto& q : split.queries) {
        for (size_t i = 0; i < q.candidates.size(); ++i) {
          labels.Add(q.candidates[i].label);
          for (size_t j = i + 1; j < q.candidates.size(); ++j) {
            const double s = routing::WeightedJaccard(
                w.network, q.candidates[i].path.edges,
                q.candidates[j].path.edges);
            pairwise.Add(s);
            mean_pairwise += s;
            pairwise_n += 1.0;
          }
        }
      }
    }
    const auto name = data::CandidateStrategyName(strategy);
    pairwise.Print((name + " pairwise sim").c_str());
    labels.Print((name + " labels").c_str());
    std::printf("%-22s mean pairwise similarity = %.4f\n\n", name.c_str(),
                mean_pairwise / pairwise_n);
  }
  std::printf(
      "Expected shape: D-TkDI mass shifts to lower pairwise similarity and\n"
      "covers lower ground-truth labels than TkDI.\n");
  return 0;
}
