#include "experiment_common.h"

#include <cstdio>

#include "common/env.h"
#include "common/stopwatch.h"

namespace pathrank::bench {

ExperimentScale ResolveScale() {
  const std::string name = EnvString("PATHRANK_BENCH_SCALE", "small");
  ExperimentScale s;
  s.name = name;
  if (name == "tiny") {
    s.net_rows = 14;
    s.net_cols = 14;
    s.num_drivers = 15;
    s.num_trips = 220;
    s.candidates_k = 6;
    s.max_path_vertices = 36;
    s.hidden_size = 32;
    s.train_epochs = 14;
    s.node2vec_walks = 8;
    s.node2vec_walk_length = 25;
    s.node2vec_epochs = 3;
  } else if (name == "paper") {
    s.net_rows = 34;
    s.net_cols = 36;
    s.num_drivers = 183;  // the paper's vehicle count
    s.num_trips = 2000;
    s.candidates_k = 10;
    s.max_path_vertices = 70;
    s.hidden_size = 128;
    s.train_epochs = 30;
    s.node2vec_walks = 10;
    s.node2vec_walk_length = 40;
    s.node2vec_epochs = 3;
  } else {  // small (default)
    s.net_rows = 20;
    s.net_cols = 20;
    s.num_drivers = 40;
    s.num_trips = 700;
    s.candidates_k = 10;
    s.max_path_vertices = 45;
    s.hidden_size = 64;
    s.train_epochs = 12;
    s.node2vec_walks = 8;
    s.node2vec_walk_length = 30;
    s.node2vec_epochs = 2;
  }
  return s;
}

Workload BuildWorkload(const ExperimentScale& scale,
                       data::CandidateStrategy strategy, uint64_t seed) {
  Workload w;
  w.strategy = strategy;

  graph::SyntheticNetworkConfig net_cfg;
  net_cfg.rows = scale.net_rows;
  net_cfg.cols = scale.net_cols;
  net_cfg.seed = seed;
  w.network = graph::BuildSyntheticNetwork(net_cfg);

  traj::TrajectoryGeneratorConfig traj_cfg;
  traj_cfg.num_drivers = scale.num_drivers;
  traj_cfg.num_trips = scale.num_trips;
  traj_cfg.min_trip_distance_m = 2500.0;
  traj_cfg.max_path_vertices = scale.max_path_vertices;
  traj_cfg.seed = seed + 1;
  w.trips = traj::TrajectoryGenerator(w.network, traj_cfg).Generate();

  data::CandidateGenConfig gen_cfg;
  gen_cfg.strategy = strategy;
  gen_cfg.k = scale.candidates_k;
  gen_cfg.similarity_threshold = 0.6;
  gen_cfg.max_enumerated = 300;
  data::RankingDataset dataset;
  dataset.queries = data::GenerateQueries(w.network, w.trips, gen_cfg);

  Rng rng(seed + 2);
  w.split = data::SplitDataset(dataset, 0.7, 0.1, rng);
  return w;
}

nn::Matrix TrainEmbeddings(const graph::RoadNetwork& network,
                           const ExperimentScale& scale, int dims,
                           uint64_t seed) {
  embedding::Node2VecConfig cfg;
  cfg.walk.walk_length = scale.node2vec_walk_length;
  cfg.walk.walks_per_vertex = scale.node2vec_walks;
  cfg.skipgram.dims = dims;
  cfg.skipgram.epochs = scale.node2vec_epochs;
  cfg.seed = seed;
  return embedding::TrainNode2Vec(network, cfg);
}

ExperimentResult RunExperiment(const Workload& workload,
                               const nn::Matrix& embeddings,
                               const ExperimentScale& scale,
                               const RunSpec& spec) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = static_cast<size_t>(spec.embedding_dim);
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.cell = spec.cell;
  model_cfg.bidirectional = spec.bidirectional;
  model_cfg.finetune_embedding = spec.finetune_embedding;
  model_cfg.seed = 7;

  core::PathRankModel model(workload.network.num_vertices(), model_cfg);
  model.InitializeEmbedding(embeddings);

  core::TrainerConfig train_cfg;
  train_cfg.epochs = scale.train_epochs;
  train_cfg.batch_size = 32;
  train_cfg.learning_rate = spec.learning_rate;
  train_cfg.patience = 6;
  train_cfg.seed = 17;

  ExperimentResult result;
  Stopwatch watch;
  const auto history = core::TrainPathRank(model, workload.split.train,
                                           workload.split.validation,
                                           train_cfg);
  result.train_seconds = watch.ElapsedSeconds();
  result.epochs_ran = static_cast<int>(history.epochs.size());
  result.test = core::Evaluate(model, workload.split.test);
  return result;
}

void PrintTableHeader(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("%-10s %5s %8s %8s %8s %8s %10s\n", "Strategy", "M", "MAE",
              "MARE", "tau", "rho", "train(s)");
  std::printf("%s\n", std::string(62, '-').c_str());
}

void PrintTableRow(const std::string& strategy, int m,
                   const ExperimentResult& result) {
  std::printf("%-10s %5d %8.4f %8.4f %8.4f %8.4f %10.1f\n", strategy.c_str(),
              m, result.test.mae, result.test.mare, result.test.kendall_tau,
              result.test.spearman_rho, result.train_seconds);
  std::fflush(stdout);
}

}  // namespace pathrank::bench
