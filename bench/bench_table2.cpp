// Reproduces Table 2 of the paper: "Training Data Generation Strategies,
// PR-A2" — identical grid to Table 1 but with the embedding matrix B
// *fine-tuned* during training. The paper's headline finding: PR-A2 beats
// PR-A1 across the board ("updating embedding matrix B is useful").
//
// Paper values:
//   TkDI   M=64  : MAE 0.1163  MARE 0.1868  tau 0.6835  rho 0.7256
//   TkDI   M=128 : MAE 0.1130  MARE 0.1814  tau 0.7082  rho 0.7481
//   D-TkDI M=64  : MAE 0.0940  MARE 0.1509  tau 0.7144  rho 0.7532
//   D-TkDI M=128 : MAE 0.0855  MARE 0.1373  tau 0.7339  rho 0.7731
#include <cstdio>

#include "experiment_common.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  const ExperimentScale scale = ResolveScale();
  std::printf(
      "PathRank Table 2 reproduction (PR-A2: fine-tuned embedding), "
      "scale=%s\n\n",
      scale.name.c_str());

  PrintTableHeader("Table 2: Training Data Generation Strategies, PR-A2");
  for (const auto strategy : {data::CandidateStrategy::kTopK,
                              data::CandidateStrategy::kDiversifiedTopK}) {
    const Workload workload = BuildWorkload(scale, strategy);
    for (const int m : {64, 128}) {
      const nn::Matrix embeddings =
          TrainEmbeddings(workload.network, scale, m);
      RunSpec spec;
      spec.embedding_dim = m;
      spec.finetune_embedding = true;  // PR-A2
      const ExperimentResult result =
          RunExperiment(workload, embeddings, scale, spec);
      PrintTableRow(data::CandidateStrategyName(strategy), m, result);
    }
  }
  std::printf(
      "\nPaper (Table 2): TkDI/64 .1163/.1868/.6835/.7256 | "
      "TkDI/128 .1130/.1814/.7082/.7481\n"
      "                 D-TkDI/64 .0940/.1509/.7144/.7532 | "
      "D-TkDI/128 .0855/.1373/.7339/.7731\n");
  return 0;
}
