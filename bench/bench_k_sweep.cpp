// Ablation: effect of the candidate count k on PathRank accuracy
// (D-TkDI, PR-A2, M = 64). More candidates widen label coverage per query
// but dilute each query's weight; the paper fixes k = 10.
#include <cstdio>

#include "experiment_common.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  ExperimentScale scale = ResolveScale();
  std::printf("k-sweep ablation (D-TkDI, PR-A2, M=64), scale=%s\n\n",
              scale.name.c_str());
  std::printf("%5s %8s %8s %8s %8s %10s\n", "k", "MAE", "MARE", "tau", "rho",
              "train(s)");
  std::printf("%s\n", std::string(52, '-').c_str());

  for (const int k : {4, 12}) {
    scale.candidates_k = k;
    const Workload workload =
        BuildWorkload(scale, data::CandidateStrategy::kDiversifiedTopK);
    const nn::Matrix embeddings = TrainEmbeddings(workload.network, scale, 64);
    RunSpec spec;
    spec.embedding_dim = 64;
    spec.finetune_embedding = true;
    const ExperimentResult r = RunExperiment(workload, embeddings, scale, spec);
    std::printf("%5d %8.4f %8.4f %8.4f %8.4f %10.1f\n", k, r.test.mae,
                r.test.mare, r.test.kendall_tau, r.test.spearman_rho,
                r.train_seconds);
    std::fflush(stdout);
  }
  return 0;
}
