// Ablation: recurrent cell choice (the paper uses a GRU) and
// bidirectionality (the paper's overview figure shows two GRU chains).
// D-TkDI, PR-A2, M = 64.
#include <cstdio>

#include "experiment_common.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  const ExperimentScale scale = ResolveScale();
  std::printf("Cell ablation (D-TkDI, PR-A2, M=64), scale=%s\n\n",
              scale.name.c_str());
  std::printf("%-8s %6s %8s %8s %8s %8s %10s\n", "cell", "bidir", "MAE",
              "MARE", "tau", "rho", "train(s)");
  std::printf("%s\n", std::string(62, '-').c_str());

  const Workload workload =
      BuildWorkload(scale, data::CandidateStrategy::kDiversifiedTopK);
  const nn::Matrix embeddings = TrainEmbeddings(workload.network, scale, 64);

  struct Config {
    nn::CellType cell;
    bool bidir;
  };
  // All three cells bidirectional (the paper's figure) plus one
  // unidirectional GRU to isolate the bidirectionality contribution.
  const Config configs[] = {{nn::CellType::kGru, true},
                            {nn::CellType::kLstm, true},
                            {nn::CellType::kRnn, true},
                            {nn::CellType::kGru, false}};
  for (const auto& c : configs) {
    RunSpec spec;
    spec.embedding_dim = 64;
    spec.finetune_embedding = true;
    spec.cell = c.cell;
    spec.bidirectional = c.bidir;
    const ExperimentResult r =
        RunExperiment(workload, embeddings, scale, spec);
    std::printf("%-8s %6s %8.4f %8.4f %8.4f %8.4f %10.1f\n",
                nn::CellTypeName(c.cell).c_str(), c.bidir ? "yes" : "no",
                r.test.mae, r.test.mare, r.test.kendall_tau,
                r.test.spearman_rho, r.train_seconds);
    std::fflush(stdout);
  }
  return 0;
}
