// Ablation: hidden-state reduction. The poster's overview figure feeds all
// GRU hidden states H_1..H_Z into the FC layer; mean pooling realises that
// and matches the averaging structure of the weighted-Jaccard target.
// Compared against using only the final state h_Z (D-TkDI, PR-A2, M=64).
#include <cstdio>

#include "common/stopwatch.h"
#include "experiment_common.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  const ExperimentScale scale = ResolveScale();
  std::printf("Pooling ablation (D-TkDI, PR-A2, M=64), scale=%s\n\n",
              scale.name.c_str());
  std::printf("%-12s %8s %8s %8s %8s %10s\n", "pooling", "MAE", "MARE",
              "tau", "rho", "train(s)");
  std::printf("%s\n", std::string(58, '-').c_str());

  const Workload workload =
      BuildWorkload(scale, data::CandidateStrategy::kDiversifiedTopK);
  const nn::Matrix embeddings = TrainEmbeddings(workload.network, scale, 64);

  for (const auto pooling : {core::Pooling::kMean, core::Pooling::kFinalState}) {
    core::PathRankConfig model_cfg;
    model_cfg.embedding_dim = 64;
    model_cfg.hidden_size = scale.hidden_size;
    model_cfg.finetune_embedding = true;
    model_cfg.pooling = pooling;
    model_cfg.seed = 7;
    core::PathRankModel model(workload.network.num_vertices(), model_cfg);
    model.InitializeEmbedding(embeddings);

    core::TrainerConfig train_cfg;
    train_cfg.epochs = scale.train_epochs;
    train_cfg.batch_size = 32;
    train_cfg.learning_rate = 3e-3;
    train_cfg.patience = 6;
    train_cfg.seed = 17;

    Stopwatch watch;
    core::TrainPathRank(model, workload.split.train,
                        workload.split.validation, train_cfg);
    const double seconds = watch.ElapsedSeconds();
    const auto result = core::Evaluate(model, workload.split.test);
    std::printf("%-12s %8.4f %8.4f %8.4f %8.4f %10.1f\n",
                pooling == core::Pooling::kMean ? "mean" : "final-state",
                result.mae, result.mare, result.kendall_tau,
                result.spearman_rho, seconds);
    std::fflush(stdout);
  }
  return 0;
}
