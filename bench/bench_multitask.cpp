// Extension bench: multi-task PathRank (auxiliary heads regress the
// candidate's normalised length and travel time next to the similarity
// head — the full paper's feature/multi-task direction) against the plain
// PR-A2 model. D-TkDI candidates, M = 64.
#include <cstdio>

#include "common/stopwatch.h"
#include "experiment_common.h"

int main() {
  using namespace pathrank;
  using namespace pathrank::bench;

  const ExperimentScale scale = ResolveScale();
  std::printf("Multi-task ablation (D-TkDI, PR-A2, M=64), scale=%s\n\n",
              scale.name.c_str());
  std::printf("%-14s %8s %8s %8s %8s %10s\n", "model", "MAE", "MARE", "tau",
              "rho", "train(s)");
  std::printf("%s\n", std::string(60, '-').c_str());

  const Workload workload =
      BuildWorkload(scale, data::CandidateStrategy::kDiversifiedTopK);
  const nn::Matrix embeddings = TrainEmbeddings(workload.network, scale, 64);

  for (const bool multi_task : {false, true}) {
    core::PathRankConfig model_cfg;
    model_cfg.embedding_dim = 64;
    model_cfg.hidden_size = scale.hidden_size;
    model_cfg.finetune_embedding = true;
    model_cfg.multi_task = multi_task;
    model_cfg.seed = 7;
    core::PathRankModel model(workload.network.num_vertices(), model_cfg);
    model.InitializeEmbedding(embeddings);

    core::TrainerConfig train_cfg;
    train_cfg.epochs = scale.train_epochs;
    train_cfg.batch_size = 32;
    train_cfg.learning_rate = 3e-3;
    train_cfg.patience = 6;
    train_cfg.seed = 17;

    Stopwatch watch;
    core::TrainPathRank(model, workload.split.train,
                        workload.split.validation, train_cfg);
    const double seconds = watch.ElapsedSeconds();
    const auto result = core::Evaluate(model, workload.split.test);
    std::printf("%-14s %8.4f %8.4f %8.4f %8.4f %10.1f\n",
                multi_task ? "PR-A2+MT" : "PR-A2", result.mae, result.mare,
                result.kendall_tau, result.spearman_rho, seconds);
    std::fflush(stdout);
  }
  return 0;
}
