// Throughput benchmark for the parallel compute engine: GEMM GFLOP/s,
// training epoch time, random-walk generation, candidate generation,
// ServingEngine rank latency/QPS, coalesced (BatchingQueue) serving
// latency/QPS, end-to-end HTTP serving latency/QPS/shed rate over the
// loopback, the online route-planning pipeline (cold vs candidate-cached
// latency + routes/s), and snapshot capture/hot-swap latency at 1/2/4/N
// threads.
// Emits BENCH_throughput.json (override the path with PATHRANK_BENCH_OUT)
// so the perf trajectory is tracked across PRs.
//
//   bench_throughput                  run and write the JSON
//   bench_throughput --check BASELINE additionally compare every metric
//                                     against the committed baseline with
//                                     a relative tolerance
//                                     (PATHRANK_BENCH_TOLERANCE, def 0.30)
//                                     and exit non-zero on regression.
//
// PATHRANK_BENCH_SCALE (tiny|small|paper) sizes the workload.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "experiment_common.h"
#include "serving/graph_store.h"
#include "serving/http_server.h"
#include "serving/route_planner.h"

namespace {

using namespace pathrank;

/// Flat metric map: name -> value. Names ending in "_per_s" or containing
/// "gflops" are throughput (higher is better); names ending in "_s" are
/// seconds (lower is better).
using Metrics = std::map<std::string, double>;

std::vector<size_t> ThreadCounts() {
  const size_t hw = std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::vector<size_t> counts = {1, 2, 4, hw};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

void BenchGemm(const std::vector<size_t>& thread_counts, Metrics* metrics) {
  constexpr size_t kDim = 256;
  Rng rng(1);
  nn::Matrix a(kDim, kDim);
  nn::Matrix b(kDim, kDim);
  nn::Matrix c(kDim, kDim);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
    b.data()[i] = static_cast<float>(rng.NextUniform(-1, 1));
  }
  const double flops_per_call = 2.0 * kDim * kDim * kDim;
  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    nn::GemmNN(a, b, &c);  // warm-up
    int reps = 0;
    Stopwatch watch;
    while (watch.ElapsedSeconds() < 0.5) {
      nn::GemmNN(a, b, &c);
      ++reps;
    }
    const double seconds = watch.ElapsedSeconds();
    const double gflops = flops_per_call * reps / seconds * 1e-9;
    (*metrics)["gemm256_gflops_t" + std::to_string(threads)] = gflops;
    std::printf("gemm 256^3  threads=%zu  %.2f GFLOP/s\n", threads, gflops);
  }
}

void BenchTraining(const bench::ExperimentScale& scale,
                   const bench::Workload& workload,
                   const std::vector<size_t>& thread_counts,
                   Metrics* metrics) {
  const int epochs = 2;
  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    core::PathRankConfig model_cfg;
    model_cfg.embedding_dim = 64;
    model_cfg.hidden_size = scale.hidden_size;
    model_cfg.seed = 7;
    core::PathRankModel model(workload.network.num_vertices(), model_cfg);

    core::TrainerConfig train_cfg;
    train_cfg.epochs = epochs;
    train_cfg.batch_size = 32;
    train_cfg.seed = 17;

    Stopwatch watch;
    // Empty validation set: measures the pure training path.
    const auto history = core::TrainPathRank(model, workload.split.train,
                                             data::RankingDataset{},
                                             train_cfg);
    const double per_epoch =
        watch.ElapsedSeconds() / static_cast<double>(history.epochs.size());
    (*metrics)["train_epoch_s_t" + std::to_string(threads)] = per_epoch;
    std::printf("train epoch threads=%zu  %.3f s/epoch (loss %.5f)\n",
                threads, per_epoch, history.epochs.back().train_loss);
  }
}

void BenchWalks(const bench::ExperimentScale& scale,
                const bench::Workload& workload,
                const std::vector<size_t>& thread_counts, Metrics* metrics) {
  embedding::RandomWalkConfig cfg;
  cfg.walk_length = scale.node2vec_walk_length;
  cfg.walks_per_vertex = scale.node2vec_walks;
  const embedding::RandomWalker walker(workload.network, cfg);
  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    Rng rng(99);
    Stopwatch watch;
    size_t walks = 0;
    do {
      walks += walker.GenerateCorpus(rng).size();
    } while (watch.ElapsedSeconds() < 0.5);
    const double rate = static_cast<double>(walks) / watch.ElapsedSeconds();
    (*metrics)["walks_per_s_t" + std::to_string(threads)] = rate;
    std::printf("walks       threads=%zu  %.0f walks/s\n", threads, rate);
  }
}

void BenchCandidates(const bench::ExperimentScale& scale,
                     const bench::Workload& workload,
                     const std::vector<size_t>& thread_counts,
                     Metrics* metrics) {
  data::CandidateGenConfig cfg;
  cfg.strategy = data::CandidateStrategy::kDiversifiedTopK;
  cfg.k = scale.candidates_k;
  cfg.similarity_threshold = 0.6;
  cfg.max_enumerated = 300;
  // A slice of the workload's trips keeps the serial run bounded.
  const size_t num_trips = std::min<size_t>(workload.trips.size(), 64);
  const std::vector<traj::TripPath> trips(
      workload.trips.begin(), workload.trips.begin() + num_trips);
  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    Stopwatch watch;
    const auto queries = data::GenerateQueries(workload.network, trips, cfg);
    size_t candidates = 0;
    for (const auto& query : queries) candidates += query.candidates.size();
    const double rate =
        static_cast<double>(candidates) / watch.ElapsedSeconds();
    (*metrics)["candidates_per_s_t" + std::to_string(threads)] = rate;
    std::printf("candidates  threads=%zu  %.0f candidates/s\n", threads,
                rate);
  }
}

void BenchServing(const bench::ExperimentScale& scale,
                  const bench::Workload& workload,
                  const std::vector<size_t>& thread_counts,
                  Metrics* metrics) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 64;
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.seed = 7;
  // Latency does not depend on the weight values, so an untrained model
  // measures the same serving path a trained deployment would.
  const core::PathRankModel model(workload.network.num_vertices(), model_cfg,
                                  core::InitMode::kRandomInit);
  const auto snapshot = serving::ModelSnapshot::Capture(model);

  serving::ServingOptions options;
  options.candidates.k = scale.candidates_k;
  options.candidates.similarity_threshold = 0.6;
  options.candidates.max_enumerated = 300;

  // Query mix: the workload trips' endpoints.
  std::vector<serving::RankQuery> queries;
  const size_t num_queries = std::min<size_t>(workload.trips.size(), 48);
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(
        {workload.trips[i].source(), workload.trips[i].destination()});
  }

  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    const serving::ServingEngine engine(workload.network, snapshot, options);
    // Warm-up: scratch allocation, pool spin-up.
    engine.Rank(queries[0].source, queries[0].destination);

    std::vector<double> latency;
    size_t served = 0;
    Stopwatch watch;
    do {
      std::vector<double> round(queries.size());
      ParallelForShards(0, queries.size(),
                        [&](size_t /*shard*/, size_t lo, size_t hi) {
                          for (size_t q = lo; q < hi; ++q) {
                            Stopwatch per_query;
                            engine.Rank(queries[q].source,
                                        queries[q].destination);
                            round[q] = per_query.ElapsedSeconds();
                          }
                        });
      latency.insert(latency.end(), round.begin(), round.end());
      served += queries.size();
    } while (watch.ElapsedSeconds() < 0.5);
    const double wall = watch.ElapsedSeconds();

    std::sort(latency.begin(), latency.end());
    const double p50 = PercentileSorted(latency, 0.50);
    const double p99 = PercentileSorted(latency, 0.99);
    const double qps = static_cast<double>(served) / wall;
    const std::string suffix = "_t" + std::to_string(threads);
    (*metrics)["serve_rank_p50_s" + suffix] = p50;
    (*metrics)["serve_rank_p99_s" + suffix] = p99;
    (*metrics)["serve_rank_per_s" + suffix] = qps;
    std::printf(
        "serve rank  threads=%zu  %.1f QPS  p50 %.2f ms  p99 %.2f ms\n",
        threads, qps, p50 * 1e3, p99 * 1e3);
  }
}

void BenchServingBatched(const bench::ExperimentScale& scale,
                         const bench::Workload& workload,
                         const std::vector<size_t>& thread_counts,
                         Metrics* metrics) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 64;
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.seed = 7;
  const core::PathRankModel model(workload.network.num_vertices(), model_cfg,
                                  core::InitMode::kRandomInit);
  const auto snapshot = serving::ModelSnapshot::Capture(model);

  serving::ServingOptions options;
  options.candidates.k = scale.candidates_k;
  options.candidates.similarity_threshold = 0.6;
  options.candidates.max_enumerated = 300;

  std::vector<serving::RankQuery> queries;
  const size_t num_queries = std::min<size_t>(workload.trips.size(), 48);
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(
        {workload.trips[i].source(), workload.trips[i].destination()});
  }

  for (size_t threads : thread_counts) {
    SetNumThreads(threads);
    const serving::ServingEngine engine(workload.network, snapshot, options);
    serving::BatchingOptions batch_options;  // default max_batch/max_wait
    serving::BatchingQueue queue(engine, batch_options);
    // Closed-loop clients on plain threads: pool workers must never block
    // on queue futures (batching_queue.h), and the pool stays free for
    // the dispatcher's coalesced kernels. More clients than pool threads
    // keeps the queue non-empty so flushes actually coalesce.
    const size_t clients = std::max<size_t>(4, threads);

    // Warm-up.
    queue.SubmitRank(queries[0].source, queries[0].destination).get();

    std::vector<double> latency;
    std::atomic<size_t> served{0};
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> per_client(clients);
    Stopwatch watch;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        size_t i = c;
        while (!stop.load(std::memory_order_relaxed)) {
          const auto& query = queries[i % queries.size()];
          Stopwatch per_query;
          queue.SubmitRank(query.source, query.destination).get();
          per_client[c].push_back(per_query.ElapsedSeconds());
          served.fetch_add(1, std::memory_order_relaxed);
          i += clients;
        }
      });
    }
    // Run until the sample is big enough for a meaningful p99 (with ~20
    // samples the 0.99 quantile is just the max and gates flakily), with
    // a wall cap so slow machines still finish.
    while (served.load(std::memory_order_relaxed) < 200 &&
           watch.ElapsedSeconds() < 5.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true);
    for (auto& w : workers) w.join();
    const double wall = watch.ElapsedSeconds();
    for (const auto& client_latency : per_client) {
      latency.insert(latency.end(), client_latency.begin(),
                     client_latency.end());
    }

    std::sort(latency.begin(), latency.end());
    const double p50 = PercentileSorted(latency, 0.50);
    const double p99 = PercentileSorted(latency, 0.99);
    const double qps = static_cast<double>(served.load()) / wall;
    const double rows_per_flush =
        queue.num_flushes() > 0
            ? static_cast<double>(queue.num_rows()) /
                  static_cast<double>(queue.num_flushes())
            : 0.0;
    const std::string suffix = "_t" + std::to_string(threads);
    (*metrics)["serve_batched_p50_s" + suffix] = p50;
    (*metrics)["serve_batched_p99_s" + suffix] = p99;
    (*metrics)["serve_batched_per_s" + suffix] = qps;
    std::printf(
        "serve batch threads=%zu  %.1f QPS  p50 %.2f ms  p99 %.2f ms  "
        "(%.1f rows/flush)\n",
        threads, qps, p50 * 1e3, p99 * 1e3, rows_per_flush);
  }
}

// End-to-end HTTP serving over the loopback: closed-loop keep-alive
// clients driving POST /v1/rank against an HttpServer front-ending the
// engine — the full deployment path (socket + JSON + admission + rank).
// serve_http_shed_rate is measured with max_inflight sized to the client
// count, so it is 0 by construction in a healthy build; any positive
// value means admission control started shedding load it should not have,
// which the baseline check flags as a regression.
void BenchServingHttp(const bench::ExperimentScale& scale,
                      const bench::Workload& workload, Metrics* metrics) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 64;
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.seed = 7;
  const core::PathRankModel model(workload.network.num_vertices(), model_cfg,
                                  core::InitMode::kRandomInit);
  const auto snapshot = serving::ModelSnapshot::Capture(model);

  serving::ServingOptions options;
  options.candidates.k = scale.candidates_k;
  options.candidates.similarity_threshold = 0.6;
  options.candidates.max_enumerated = 300;

  std::vector<serving::RankQuery> queries;
  const size_t num_queries = std::min<size_t>(workload.trips.size(), 48);
  queries.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back(
        {workload.trips[i].source(), workload.trips[i].destination()});
  }

  const size_t threads =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  SetNumThreads(threads);
  const serving::ServingEngine engine(workload.network, snapshot, options);

  const size_t clients = std::max<size_t>(4, threads);
  serving::HttpServerOptions http_options;
  http_options.bind_address = "127.0.0.1";
  http_options.port = 0;  // ephemeral
  http_options.num_threads = clients;
  http_options.max_inflight = clients;  // closed loop: never saturated

  serving::HttpBackend backend;
  backend.num_vertices = workload.network.num_vertices();
  backend.rank = [&engine](graph::VertexId s, graph::VertexId d) {
    return engine.Rank(s, d);
  };
  backend.score = [&engine](std::vector<routing::Path> paths) {
    return engine.ScoreBatch(paths);
  };
  serving::HttpServer server(std::move(backend), http_options);
  server.Start();

  // Pre-rendered request bodies keep the client loop about the wire, not
  // about JSON string building.
  std::vector<std::string> bodies;
  bodies.reserve(queries.size());
  for (const auto& query : queries) {
    bodies.push_back("{\"source\": " + std::to_string(query.source) +
                     ", \"destination\": " +
                     std::to_string(query.destination) + "}");
  }

  std::atomic<size_t> served{0};
  std::atomic<size_t> shed{0};
  std::atomic<size_t> errors{0};
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> per_client(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  // Warm-up outside the timed window (connection setup, scratch alloc).
  {
    serving::HttpClient warm;
    warm.Connect(server.port());
    warm.Request("POST", "/v1/rank", bodies[0]);
  }
  Stopwatch watch;
  for (size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      // Transport failures (client timeout, connection loss) end this
      // client via the errors counter — an exception escaping the
      // thread would std::terminate the whole bench.
      try {
        serving::HttpClient client;
        client.Connect(server.port());
        size_t i = c;
        while (!stop.load(std::memory_order_relaxed)) {
          Stopwatch per_request;
          const auto response =
              client.Request("POST", "/v1/rank", bodies[i % bodies.size()]);
          if (response.status == 200) {
            per_client[c].push_back(per_request.ElapsedSeconds());
            served.fetch_add(1, std::memory_order_relaxed);
          } else if (response.status == 429) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            // 4xx/5xx must not inflate the gated QPS/latency numbers.
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          i += clients;
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "serve http client %zu: %s\n", c, e.what());
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Same sizing rule as the batched bench: enough samples for a stable
  // p99, wall-capped for slow machines. Error responses end the run
  // early — their latencies are excluded, so looping on them would spin.
  while (served.load(std::memory_order_relaxed) < 200 &&
         errors.load(std::memory_order_relaxed) == 0 &&
         watch.ElapsedSeconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();
  const double wall = watch.ElapsedSeconds();
  server.Stop();

  std::vector<double> latency;
  for (const auto& client_latency : per_client) {
    latency.insert(latency.end(), client_latency.begin(),
                   client_latency.end());
  }
  std::sort(latency.begin(), latency.end());
  // Errors or an empty sample mean the HTTP path is broken, not slow.
  // Fail the bench outright: emitting zero-valued metrics would sail
  // through the CI family gate and could poison a --update baseline
  // with near-zero latencies that mask every future regression.
  if (errors.load() > 0 || latency.empty()) {
    std::fprintf(stderr,
                 "serve http bench failed: %zu error(s), %zu latency "
                 "sample(s)\n",
                 errors.load(), latency.size());
    std::exit(1);
  }
  const double p50 = PercentileSorted(latency, 0.50);
  const double p99 = PercentileSorted(latency, 0.99);
  const double qps = static_cast<double>(served.load()) / wall;
  const size_t attempts = served.load() + shed.load();
  const double shed_rate =
      attempts > 0
          ? static_cast<double>(shed.load()) / static_cast<double>(attempts)
          : 0.0;
  (*metrics)["serve_http_p50_s"] = p50;
  (*metrics)["serve_http_p99_s"] = p99;
  (*metrics)["serve_http_per_s"] = qps;
  (*metrics)["serve_http_shed_rate"] = shed_rate;
  std::printf(
      "serve http  clients=%zu  %.1f QPS  p50 %.2f ms  p99 %.2f ms  "
      "shed %.3f  errors %zu\n",
      clients, qps, p50 * 1e3, p99 * 1e3, shed_rate, errors.load());
}

// Online route planning (RoutePlanner, the /v1/route pipeline): cold =
// candidate enumeration (Yen / D-TkDI) + scoring, warm = LRU-cached
// candidate sets + scoring. Enumeration dominates, so the committed
// baseline documents the gap the cache buys; serve_route_per_s is the
// steady-state (warm) throughput. Latencies are single-caller — the
// concurrency story is measured by the serve_rank_*/serve_http_*
// sections; this one isolates the routing pipeline itself.
void BenchServingRoute(const bench::ExperimentScale& scale,
                       const bench::Workload& workload, Metrics* metrics) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 64;
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.seed = 7;
  const core::PathRankModel model(workload.network.num_vertices(), model_cfg,
                                  core::InitMode::kRandomInit);
  const auto snapshot = serving::ModelSnapshot::Capture(model);

  serving::ServingOptions options;
  options.candidates.k = scale.candidates_k;
  options.candidates.similarity_threshold = 0.6;
  options.candidates.max_enumerated = 300;
  const size_t threads =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  SetNumThreads(threads);
  const serving::ServingEngine engine(workload.network, snapshot, options);

  serving::RoutePlannerConfig route_config;
  route_config.network = &workload.network;
  route_config.candidates = options.candidates;
  route_config.cache_capacity = 4096;
  const auto score = [&engine](std::vector<routing::Path> paths) {
    return engine.ScoreBatch(paths);
  };

  // Unique (source, destination) pairs only: a duplicate would be a
  // cache HIT inside the "cold" rounds and would double-count in the
  // warm hit check below.
  std::vector<serving::RouteRequest> queries;
  std::set<std::pair<graph::VertexId, graph::VertexId>> seen;
  for (const auto& trip : workload.trips) {
    if (queries.size() >= 48) break;
    if (seen.emplace(trip.source(), trip.destination()).second) {
      queries.push_back({trip.source(), trip.destination()});
    }
  }

  // Cold: a fresh planner per round, so every Plan is a cache miss and
  // pays the full enumeration.
  std::vector<double> cold;
  Stopwatch cold_watch;
  do {
    const serving::RoutePlanner fresh(route_config, score);
    for (const auto& query : queries) {
      Stopwatch per_query;
      const auto result = fresh.Plan(query);
      cold.push_back(per_query.ElapsedSeconds());
      if (result.status != serving::RouteStatus::kOk) {
        std::fprintf(stderr, "serve route bench: unexpected status %s\n",
                     serving::RouteStatusSlug(result.status));
        std::exit(1);
      }
    }
  } while (cold.size() < 100 && cold_watch.ElapsedSeconds() < 2.0);

  // Warm: one planner primed with every query; steady state is all hits.
  const serving::RoutePlanner planner(route_config, score);
  for (const auto& query : queries) planner.Plan(query);
  std::vector<double> warm;
  size_t served = 0;
  Stopwatch watch;
  do {
    for (const auto& query : queries) {
      Stopwatch per_query;
      planner.Plan(query);
      warm.push_back(per_query.ElapsedSeconds());
      ++served;
    }
  } while (watch.ElapsedSeconds() < 0.5);
  const double wall = watch.ElapsedSeconds();
  if (planner.cache_hits() != served) {
    // Every timed Plan must be a hit (the priming pass seeded all 48
    // keys), or the "warm" numbers silently measure Yen again.
    std::fprintf(stderr,
                 "serve route bench: warm loop missed the cache "
                 "(%llu hits, expected %zu)\n",
                 static_cast<unsigned long long>(planner.cache_hits()),
                 served);
    std::exit(1);
  }

  std::sort(cold.begin(), cold.end());
  std::sort(warm.begin(), warm.end());
  (*metrics)["serve_route_cold_p50_s"] = PercentileSorted(cold, 0.50);
  (*metrics)["serve_route_cold_p99_s"] = PercentileSorted(cold, 0.99);
  (*metrics)["serve_route_warm_p50_s"] = PercentileSorted(warm, 0.50);
  (*metrics)["serve_route_warm_p99_s"] = PercentileSorted(warm, 0.99);
  (*metrics)["serve_route_per_s"] = static_cast<double>(served) / wall;
  std::printf(
      "serve route cold p50 %.2f ms  p99 %.2f ms | warm p50 %.2f ms  "
      "p99 %.2f ms  %.1f routes/s\n",
      PercentileSorted(cold, 0.50) * 1e3, PercentileSorted(cold, 0.99) * 1e3,
      PercentileSorted(warm, 0.50) * 1e3, PercentileSorted(warm, 0.99) * 1e3,
      static_cast<double>(served) / wall);
}

// Cold-path spur-engine shoot-out: the same long-range Yen enumerations
// through the plain-Dijkstra spur engine and through ALT (landmark
// lower bounds, preprocessed once per planner outside the timed
// region), at two graph scales. Cache capacity is zero so every Plan
// pays the full enumeration — exactly the /v1/route miss path. Both
// engines produce bitwise-identical candidate sets (enforced by
// engine_equivalence_test), so the latency gap is pure goal-direction:
// the committed baseline documents ALT's speedup on the large graph.
void BenchServingRouteColdEngines(Metrics* metrics) {
  struct ColdScale {
    const char* name;
    int rows, cols;
    int landmarks;
    int num_queries;
  };
  const ColdScale scales[] = {{"small", 24, 24, 8, 16},
                              {"large", 64, 64, 16, 8}};
  const auto score = [](std::vector<routing::Path> paths) {
    // Deterministic, trivially cheap scorer: rank by cost so the bench
    // isolates enumeration latency from model inference.
    std::vector<serving::ScoredPath> scored;
    scored.reserve(paths.size());
    for (auto& path : paths) {
      serving::ScoredPath sp;
      sp.score = -path.cost;
      sp.path = std::move(path);
      scored.push_back(std::move(sp));
    }
    return scored;
  };
  for (const ColdScale& gs : scales) {
    graph::SyntheticNetworkConfig net_config;
    net_config.rows = gs.rows;
    net_config.cols = gs.cols;
    net_config.seed = 9;
    const graph::RoadNetwork network = graph::BuildSyntheticNetwork(net_config);
    const size_t n = network.num_vertices();
    // Long-range pairs (near-corner to near-corner): the regime where
    // goal-direction matters most and the /v1/route tail lives.
    std::vector<serving::RouteRequest> queries;
    for (int q = 0; q < gs.num_queries; ++q) {
      const auto s = static_cast<graph::VertexId>((q * 37) % (n / 8));
      const auto t =
          static_cast<graph::VertexId>(n - 1 - ((q * 53) % (n / 8)));
      queries.push_back({s, t});
    }
    for (const serving::SpurEngine spur :
         {serving::SpurEngine::kDijkstra, serving::SpurEngine::kAlt}) {
      serving::RoutePlannerConfig config;
      config.network = &network;
      config.cache_capacity = 0;  // every Plan is a cold miss
      config.spur_engine = spur;
      config.num_landmarks = gs.landmarks;
      config.candidates.strategy = data::CandidateStrategy::kTopK;
      config.candidates.k = 6;
      // Planner construction (including the one-time ALT preprocessing
      // for pinned networks) stays outside the timed region.
      const serving::RoutePlanner planner(config, score);
      std::vector<double> latency;
      Stopwatch budget;
      do {
        for (const auto& query : queries) {
          Stopwatch per_query;
          const auto result = planner.Plan(query);
          latency.push_back(per_query.ElapsedSeconds());
          if (result.status != serving::RouteStatus::kOk) {
            std::fprintf(stderr,
                         "serve route cold engine bench: status %s\n",
                         serving::RouteStatusSlug(result.status));
            std::exit(1);
          }
        }
      } while (latency.size() < 48 && budget.ElapsedSeconds() < 3.0);
      std::sort(latency.begin(), latency.end());
      const std::string prefix = std::string("serve_route_cold_") + gs.name +
                                 "_" + serving::SpurEngineName(spur);
      (*metrics)[prefix + "_p50_s"] = PercentileSorted(latency, 0.50);
      (*metrics)[prefix + "_p99_s"] = PercentileSorted(latency, 0.99);
      std::printf("serve route cold %s/%s  p50 %.2f ms  p99 %.2f ms\n",
                  gs.name, serving::SpurEngineName(spur),
                  PercentileSorted(latency, 0.50) * 1e3,
                  PercentileSorted(latency, 0.99) * 1e3);
    }
  }
}

// Live-graph ingestion (/v1/traffic) and what it costs the route path:
// ingest = copy-on-write CSR rebuild + one atomic snapshot publish per
// batch; after-swap = the first route-query wave at the new epoch, when
// every cached candidate set is stale by definition and each query pays
// a full re-enumeration. The gap between serve_route_warm_* and
// serve_route_after_swap_* is the correctness price of epoch-keyed
// invalidation.
void BenchServingGraphSwap(const bench::ExperimentScale& scale,
                           const bench::Workload& workload,
                           Metrics* metrics) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 64;
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.seed = 7;
  const core::PathRankModel model(workload.network.num_vertices(), model_cfg,
                                  core::InitMode::kRandomInit);
  const auto snapshot = serving::ModelSnapshot::Capture(model);

  serving::ServingOptions options;
  options.candidates.k = scale.candidates_k;
  options.candidates.similarity_threshold = 0.6;
  options.candidates.max_enumerated = 300;
  const serving::ServingEngine engine(workload.network, snapshot, options);

  serving::GraphStore store{graph::RoadNetwork(workload.network)};
  serving::RoutePlannerConfig route_config;
  route_config.store = &store;
  route_config.candidates = options.candidates;
  route_config.cache_capacity = 4096;
  const serving::RoutePlanner planner(
      route_config, [&engine](std::vector<routing::Path> paths) {
        return engine.ScoreBatch(paths);
      });

  std::vector<serving::RouteRequest> queries;
  std::set<std::pair<graph::VertexId, graph::VertexId>> seen;
  for (const auto& trip : workload.trips) {
    if (queries.size() >= 24) break;
    if (seen.emplace(trip.source(), trip.destination()).second) {
      queries.push_back({trip.source(), trip.destination()});
    }
  }
  // Prime so the FIRST post-swap wave measures invalidation, not a cold
  // cache.
  for (const auto& query : queries) planner.Plan(query);

  const size_t num_edges = workload.network.num_edges();
  const size_t batch_size = std::min<size_t>(64, num_edges);
  std::vector<double> ingest;
  std::vector<double> after_swap;
  int round = 0;
  Stopwatch watch;
  do {
    // A rotating window of cost perturbations; alternating 1.25 / 0.8
    // keeps travel times bounded over arbitrarily many rounds.
    const double factor = (round % 2 == 0) ? 1.25 : 0.8;
    const auto current = store.Current();
    std::vector<graph::TrafficUpdate> batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      graph::TrafficUpdate update;
      update.edge = static_cast<graph::EdgeId>(
          (static_cast<size_t>(round) * batch_size + i) % num_edges);
      update.travel_time_s =
          current->network().edge(update.edge).travel_time_s * factor;
      update.has_travel_time = true;
      batch.push_back(update);
    }
    Stopwatch per_batch;
    const serving::TrafficResult applied = store.ApplyTraffic(batch);
    ingest.push_back(per_batch.ElapsedSeconds());
    if (applied.status != serving::TrafficStatus::kOk) {
      std::fprintf(stderr, "graph swap bench: traffic rejected: %s\n",
                   applied.message.c_str());
      std::exit(1);
    }

    // The first wave after the swap: every query must be a miss (its
    // cached set belongs to the superseded epoch) and must resolve
    // against the new snapshot.
    for (const auto& query : queries) {
      Stopwatch per_query;
      const auto result = planner.Plan(query);
      after_swap.push_back(per_query.ElapsedSeconds());
      if (result.status != serving::RouteStatus::kOk) {
        std::fprintf(stderr, "graph swap bench: unexpected status %s\n",
                     serving::RouteStatusSlug(result.status));
        std::exit(1);
      }
      if (result.cache_hit || result.graph_epoch != applied.epoch) {
        // A hit here means a stale set crossed the epoch boundary — the
        // bench would silently measure the wrong thing (and the serving
        // stack would be broken).
        std::fprintf(stderr,
                     "graph swap bench: stale cache entry served after "
                     "swap (hit=%d epoch=%llu expected %llu)\n",
                     result.cache_hit ? 1 : 0,
                     static_cast<unsigned long long>(result.graph_epoch),
                     static_cast<unsigned long long>(applied.epoch));
        std::exit(1);
      }
    }
    ++round;
  } while (round < 4 ||
           (after_swap.size() < 96 && watch.ElapsedSeconds() < 2.0));

  std::sort(ingest.begin(), ingest.end());
  std::sort(after_swap.begin(), after_swap.end());
  (*metrics)["serve_traffic_ingest_p50_s"] = PercentileSorted(ingest, 0.50);
  (*metrics)["serve_traffic_ingest_p99_s"] = PercentileSorted(ingest, 0.99);
  (*metrics)["serve_route_after_swap_p50_s"] =
      PercentileSorted(after_swap, 0.50);
  (*metrics)["serve_route_after_swap_p99_s"] =
      PercentileSorted(after_swap, 0.99);
  std::printf(
      "serve traffic ingest p50 %.2f ms  p99 %.2f ms | route after swap "
      "p50 %.2f ms  p99 %.2f ms (%d swaps)\n",
      PercentileSorted(ingest, 0.50) * 1e3,
      PercentileSorted(ingest, 0.99) * 1e3,
      PercentileSorted(after_swap, 0.50) * 1e3,
      PercentileSorted(after_swap, 0.99) * 1e3, round);
}

void BenchSnapshotSwap(const bench::ExperimentScale& scale,
                       const bench::Workload& workload, Metrics* metrics) {
  core::PathRankConfig model_cfg;
  model_cfg.embedding_dim = 64;
  model_cfg.hidden_size = scale.hidden_size;
  model_cfg.seed = 7;
  const core::PathRankModel model(workload.network.num_vertices(), model_cfg,
                                  core::InitMode::kRandomInit);

  // Capture cost: the full parameter deep-copy a deployment pays per
  // checkpoint publish.
  constexpr int kCaptures = 10;
  Stopwatch capture_watch;
  std::shared_ptr<const serving::ModelSnapshot> snapshot;
  for (int i = 0; i < kCaptures; ++i) {
    snapshot = serving::ModelSnapshot::Capture(model);
  }
  const double capture_s = capture_watch.ElapsedSeconds() / kCaptures;
  (*metrics)["snapshot_capture_s"] = capture_s;

  // Swap cost under load: the cut-over latency a serving fleet pays per
  // model publish, with rank traffic hammering the engine throughout.
  serving::ServingOptions options;
  options.candidates.k = scale.candidates_k;
  options.candidates.similarity_threshold = 0.6;
  options.candidates.max_enumerated = 300;
  serving::ServingEngine engine(workload.network, snapshot, options);
  const auto alternate = serving::ModelSnapshot::Capture(model);

  std::atomic<bool> stop{false};
  constexpr size_t kLoadThreads = 3;
  std::vector<std::thread> load;
  for (size_t t = 0; t < kLoadThreads; ++t) {
    load.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& trip = workload.trips[i % workload.trips.size()];
        engine.Rank(trip.source(), trip.destination());
        ++i;
      }
    });
  }
  constexpr int kSwaps = 2000;
  Stopwatch swap_watch;
  for (int s = 0; s < kSwaps; ++s) {
    engine.SwapSnapshot(s % 2 == 0 ? alternate : snapshot);
  }
  const double swap_s = swap_watch.ElapsedSeconds() / kSwaps;
  stop.store(true);
  for (auto& t : load) t.join();
  (*metrics)["swap_latency_s"] = swap_s;
  std::printf("snapshot    capture %.3f ms  swap-under-load %.3f us\n",
              capture_s * 1e3, swap_s * 1e6);
}

void WriteJson(const std::string& path, const std::string& scale_name,
               const Metrics& metrics) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"scale\": \"" << scale_name << "\",\n";
  out << "  \"hardware_concurrency\": "
      << std::max<unsigned>(1, std::thread::hardware_concurrency()) << ",\n";
  out << "  \"metrics\": {\n";
  size_t i = 0;
  char buf[64];
  for (const auto& [name, value] : metrics) {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out << "    \"" << name << "\": " << buf
        << (++i < metrics.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Minimal reader for the "metrics" object this tool writes: scans for
/// `"name": number` pairs. Good enough for regression checking without a
/// JSON dependency.
Metrics ReadMetrics(const std::string& path) {
  Metrics metrics;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return metrics;
  }
  std::string line;
  bool in_metrics = false;
  while (std::getline(in, line)) {
    if (line.find("\"metrics\"") != std::string::npos) {
      in_metrics = true;
      continue;
    }
    if (!in_metrics) continue;
    const size_t q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    const size_t q2 = line.find('"', q1 + 1);
    const size_t colon = line.find(':', q2);
    if (q2 == std::string::npos || colon == std::string::npos) continue;
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    metrics[name] = std::strtod(line.c_str() + colon + 1, nullptr);
  }
  return metrics;
}

bool HigherIsBetter(const std::string& name) {
  return name.find("_per_s") != std::string::npos ||
         name.find("gflops") != std::string::npos;
}

int CheckAgainstBaseline(const Metrics& fresh, const std::string& baseline_path,
                         double tolerance) {
  const Metrics baseline = ReadMetrics(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "no baseline metrics found in %s\n",
                 baseline_path.c_str());
    return 2;
  }
  int failures = 0;
  for (const auto& [name, base_value] : baseline) {
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      std::fprintf(stderr, "MISSING  %s (in baseline, not measured)\n",
                   name.c_str());
      ++failures;
      continue;
    }
    const double value = it->second;
    bool ok;
    if (HigherIsBetter(name)) {
      ok = value >= base_value * (1.0 - tolerance);
    } else {
      ok = value <= base_value * (1.0 + tolerance);
    }
    std::printf("%-8s %-28s base=%-12.6g now=%-12.6g\n",
                ok ? "OK" : "REGRESSED", name.c_str(), base_value, value);
    if (!ok) ++failures;
  }
  return failures > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    }
  }

  const bench::ExperimentScale scale = bench::ResolveScale();
  std::printf("scale=%s hardware_concurrency=%u\n", scale.name.c_str(),
              std::max<unsigned>(1, std::thread::hardware_concurrency()));
  const bench::Workload workload = bench::BuildWorkload(
      scale, data::CandidateStrategy::kDiversifiedTopK);
  const std::vector<size_t> thread_counts = ThreadCounts();

  Metrics metrics;
  BenchGemm(thread_counts, &metrics);
  BenchWalks(scale, workload, thread_counts, &metrics);
  BenchCandidates(scale, workload, thread_counts, &metrics);
  BenchServing(scale, workload, thread_counts, &metrics);
  BenchServingBatched(scale, workload, thread_counts, &metrics);
  BenchServingHttp(scale, workload, &metrics);
  BenchServingRoute(scale, workload, &metrics);
  BenchServingRouteColdEngines(&metrics);
  BenchServingGraphSwap(scale, workload, &metrics);
  BenchSnapshotSwap(scale, workload, &metrics);
  BenchTraining(scale, workload, thread_counts, &metrics);

  const std::string out_path =
      EnvString("PATHRANK_BENCH_OUT", "BENCH_throughput.json");
  WriteJson(out_path, scale.name, metrics);

  if (!baseline_path.empty()) {
    const double tolerance = EnvDouble("PATHRANK_BENCH_TOLERANCE", 0.30);
    return CheckAgainstBaseline(metrics, baseline_path, tolerance);
  }
  return 0;
}
