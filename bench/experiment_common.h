// Shared workload construction and experiment runner for the table/figure
// benchmarks. Every bench binary reproduces one artefact of the paper's
// evaluation on the simulated North-Jutland-style workload.
//
// Workload size is selected with PATHRANK_BENCH_SCALE = tiny | small |
// paper (default: small, sized for a single CPU core).
#pragma once

#include <string>
#include <vector>

#include "pathrank.h"

namespace pathrank::bench {

/// Workload scale preset.
struct ExperimentScale {
  std::string name;
  int net_rows;
  int net_cols;
  int num_drivers;
  int num_trips;
  int candidates_k;
  int max_path_vertices;
  size_t hidden_size;
  int train_epochs;
  int node2vec_walks;
  int node2vec_walk_length;
  int node2vec_epochs;
};

/// Resolves the scale from PATHRANK_BENCH_SCALE (tiny|small|paper).
ExperimentScale ResolveScale();

/// A fully materialised experiment workload: network, trajectories and the
/// train/val/test datasets for one candidate-generation strategy.
struct Workload {
  graph::RoadNetwork network;
  std::vector<traj::TripPath> trips;
  data::DatasetSplit split;
  data::CandidateStrategy strategy;
};

/// Builds (deterministically) the workload for one strategy.
Workload BuildWorkload(const ExperimentScale& scale,
                       data::CandidateStrategy strategy, uint64_t seed = 42);

/// Pre-trains node2vec embeddings of dimension `dims` for the network.
nn::Matrix TrainEmbeddings(const graph::RoadNetwork& network,
                           const ExperimentScale& scale, int dims,
                           uint64_t seed = 99);

/// One PathRank training + evaluation run.
struct ExperimentResult {
  core::EvalResult test;
  double train_seconds = 0.0;
  double embed_seconds = 0.0;
  int epochs_ran = 0;
};

/// Model/training options for one grid cell.
struct RunSpec {
  int embedding_dim = 64;           // the paper's M
  bool finetune_embedding = false;  // PR-A1 (false) / PR-A2 (true)
  nn::CellType cell = nn::CellType::kGru;
  bool bidirectional = true;
  double learning_rate = 3e-3;
};

/// Trains PathRank on `workload` with pre-trained `embeddings` and returns
/// test-set metrics.
ExperimentResult RunExperiment(const Workload& workload,
                               const nn::Matrix& embeddings,
                               const ExperimentScale& scale,
                               const RunSpec& spec);

/// Prints the standard table header used by the table benches.
void PrintTableHeader(const std::string& title);

/// Prints one table row in the paper's format.
void PrintTableRow(const std::string& strategy, int m,
                   const ExperimentResult& result);

}  // namespace pathrank::bench
