// Micro-benchmarks of the routing substrate: point-to-point engines and
// the candidate generators across network sizes.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/network_builder.h"
#include "routing/astar.h"
#include "routing/bidirectional_dijkstra.h"
#include "routing/cost_model.h"
#include "routing/dijkstra.h"
#include "routing/diversified.h"
#include "routing/yen.h"

namespace {

using namespace pathrank;
using namespace pathrank::routing;

graph::RoadNetwork MakeNetwork(int side) {
  graph::SyntheticNetworkConfig cfg;
  cfg.rows = side;
  cfg.cols = side;
  cfg.seed = 13;
  return graph::BuildSyntheticNetwork(cfg);
}

/// Deterministic far-apart query pair for a network.
std::pair<VertexId, VertexId> PickQuery(const graph::RoadNetwork& net,
                                        uint64_t salt) {
  Rng rng(777 + salt);
  const auto s = static_cast<VertexId>(rng.NextBounded(net.num_vertices()));
  const auto t = static_cast<VertexId>(
      (s + net.num_vertices() / 2 + rng.NextBounded(net.num_vertices() / 4)) %
      net.num_vertices());
  return {s, t};
}

void BM_Dijkstra(benchmark::State& state) {
  const auto net = MakeNetwork(static_cast<int>(state.range(0)));
  const auto cost = EdgeCostFn::Length(net);
  Dijkstra engine(net);
  uint64_t salt = 0;
  for (auto _ : state) {
    const auto [s, t] = PickQuery(net, salt++ % 16);
    auto p = engine.ShortestPath(s, t, cost);
    benchmark::DoNotOptimize(p);
  }
  state.counters["settled"] =
      static_cast<double>(engine.last_settled_count());
}
BENCHMARK(BM_Dijkstra)->Arg(16)->Arg(32)->Arg(64);

void BM_BidirectionalDijkstra(benchmark::State& state) {
  const auto net = MakeNetwork(static_cast<int>(state.range(0)));
  const auto cost = EdgeCostFn::Length(net);
  BidirectionalDijkstra engine(net);
  uint64_t salt = 0;
  for (auto _ : state) {
    const auto [s, t] = PickQuery(net, salt++ % 16);
    auto p = engine.ShortestPath(s, t, cost);
    benchmark::DoNotOptimize(p);
  }
  state.counters["settled"] =
      static_cast<double>(engine.last_settled_count());
}
BENCHMARK(BM_BidirectionalDijkstra)->Arg(16)->Arg(32)->Arg(64);

void BM_AStar(benchmark::State& state) {
  const auto net = MakeNetwork(static_cast<int>(state.range(0)));
  const auto cost = EdgeCostFn::Length(net);
  AStar engine(net);
  uint64_t salt = 0;
  for (auto _ : state) {
    const auto [s, t] = PickQuery(net, salt++ % 16);
    auto p = engine.ShortestPath(s, t, cost);
    benchmark::DoNotOptimize(p);
  }
  state.counters["settled"] =
      static_cast<double>(engine.last_settled_count());
}
BENCHMARK(BM_AStar)->Arg(16)->Arg(32)->Arg(64);

void BM_YenTopK(benchmark::State& state) {
  const auto net = MakeNetwork(24);
  const auto cost = EdgeCostFn::Length(net);
  const int k = static_cast<int>(state.range(0));
  uint64_t salt = 0;
  for (auto _ : state) {
    const auto [s, t] = PickQuery(net, salt++ % 8);
    auto paths = TopKShortestPaths(net, s, t, cost, k);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_YenTopK)->Arg(4)->Arg(8)->Arg(16);

void BM_DiversifiedTopK(benchmark::State& state) {
  const auto net = MakeNetwork(24);
  const auto cost = EdgeCostFn::Length(net);
  DiversifiedOptions options;
  options.k = static_cast<int>(state.range(0));
  options.similarity_threshold = 0.8;
  options.max_enumerated = 300;
  uint64_t salt = 0;
  for (auto _ : state) {
    const auto [s, t] = PickQuery(net, salt++ % 8);
    auto paths = DiversifiedTopK(net, s, t, cost, options);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_DiversifiedTopK)->Arg(4)->Arg(8)->Arg(16);

void BM_NetworkConstruction(benchmark::State& state) {
  graph::SyntheticNetworkConfig cfg;
  cfg.rows = static_cast<int>(state.range(0));
  cfg.cols = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto net = graph::BuildSyntheticNetwork(cfg);
    benchmark::DoNotOptimize(net);
  }
}
BENCHMARK(BM_NetworkConstruction)->Arg(16)->Arg(48);

}  // namespace

BENCHMARK_MAIN();
